//! The experiment drivers, one per paper artifact.

use mahimahi::browser::{MuxConfig, ProtocolMode};
use mahimahi::harness::{run_page_load, LinkSpec, LoadSpec, NetSpec, QdiscKind};
use mahimahi::net::{CcAlgorithm, RecoveryTier, TcpConfig};
use mm_corpus::{
    cnbc_like, generate_plans, materialize, nytimes_like, server_distribution, wikihow_like,
    CorpusConfig, ServerDistribution, SitePlan,
};
use mm_replay::{ReplayConfig, ReplayMode};
use mm_sim::{RngStream, SimDuration, Summary};
use mm_trace::{cellular, constant_rate, CellularParams};
use mm_web::{HostProfile, LiveWebConfig};

use crate::parallel::parallel_map;

/// E1/E6 — Figure 2: PLT CDFs for bare ReplayShell, ReplayShell inside
/// DelayShell 0 ms, and ReplayShell inside LinkShell at 1000 Mbit/s.
pub struct Fig2Result {
    pub replay: Summary,
    pub delay0: Summary,
    pub link1000: Summary,
}

impl Fig2Result {
    /// Median overhead of DelayShell-0 over bare replay, percent.
    pub fn delay0_overhead_pct(&mut self) -> f64 {
        (self.delay0.median() - self.replay.median()) / self.replay.median() * 100.0
    }

    /// Median overhead of LinkShell-1000 over bare replay, percent.
    pub fn link1000_overhead_pct(&mut self) -> f64 {
        (self.link1000.median() - self.replay.median()) / self.replay.median() * 100.0
    }
}

/// Run Figure 2 over the first `n_sites` corpus sites (500 = the paper).
///
/// Sites shard across threads; each site's three arms share one seed
/// derived from the site index, so the summaries are byte-identical to a
/// serial run.
pub fn fig2(n_sites: usize, seed: u64) -> Fig2Result {
    let plans = corpus_subset(n_sites, seed);
    let trace_1000 = constant_rate(1000.0, 1000);
    let per_site = parallel_map(&plans, |i, plan| {
        let site = materialize(plan);
        let mut spec = LoadSpec::new(&site);
        spec.seed = seed.wrapping_add(i as u64);
        // Arm 1: bare ReplayShell.
        let replay = run_page_load(&spec).plt.as_millis_f64();
        // Arm 2: DelayShell 0 ms.
        spec.net = NetSpec::delay_ms(0);
        let delay0 = run_page_load(&spec).plt.as_millis_f64();
        // Arm 3: LinkShell 1000 Mbit/s, infinite droptail.
        spec.net = NetSpec {
            link: Some(LinkSpec::symmetric(trace_1000.clone())),
            ..NetSpec::default()
        };
        let link1000 = run_page_load(&spec).plt.as_millis_f64();
        (replay, delay0, link1000)
    });
    Fig2Result {
        replay: Summary::from_samples(per_site.iter().map(|s| s.0)),
        delay0: Summary::from_samples(per_site.iter().map(|s| s.1)),
        link1000: Summary::from_samples(per_site.iter().map(|s| s.2)),
    }
}

/// E2 — Table 1: mean ± σ PLT for CNBC-like and wikiHow-like pages, 100
/// loads each, on two host machines.
pub struct Table1Result {
    /// (site name, machine name, summary)
    pub cells: Vec<(String, String, Summary)>,
}

impl Table1Result {
    /// Largest cross-machine difference of means, as a fraction of the
    /// smaller mean, per site. Paper: < 0.5%.
    pub fn worst_cross_machine_mean_diff(&self) -> f64 {
        let mut worst: f64 = 0.0;
        for site in ["www.cnbc.com", "www.wikihow.com"] {
            let means: Vec<f64> = self
                .cells
                .iter()
                .filter(|(s, _, _)| s == site)
                .map(|(_, _, sum)| sum.mean())
                .collect();
            if means.len() == 2 {
                let lo = means[0].min(means[1]);
                let hi = means[0].max(means[1]);
                worst = worst.max((hi - lo) / lo);
            }
        }
        worst
    }

    /// Largest coefficient of variation across cells. Paper: σ within
    /// 1.6% of the mean.
    pub fn worst_cv(&self) -> f64 {
        self.cells
            .iter()
            .map(|(_, _, s)| s.cv())
            .fold(0.0, f64::max)
    }
}

/// Run Table 1. The paper's setup loads each page 100 times per machine
/// under the same emulated conditions (30 ms delay shell here).
pub fn table1(loads: usize, seed: u64) -> Table1Result {
    let mut cells = Vec::new();
    for (plan, site_seed) in [(cnbc_like(seed), 1u64), (wikihow_like(seed), 2u64)] {
        let site = materialize(&plan);
        for (machine, profile) in [
            ("Machine 1", HostProfile::machine_1()),
            ("Machine 2", HostProfile::machine_2()),
        ] {
            let mut spec = LoadSpec::new(&site);
            spec.net = NetSpec::delay_ms(30);
            spec.host_profile = Some(profile);
            // Machine identity changes the noise realization only; the
            // seed series per machine must differ.
            spec.seed = seed
                .wrapping_mul(31)
                .wrapping_add(site_seed)
                .wrapping_add(if machine == "Machine 2" { 1 << 32 } else { 0 });
            let plts = mahimahi::harness::run_loads(&spec, loads);
            cells.push((
                plan.name.clone(),
                machine.to_string(),
                Summary::from_samples(plts),
            ));
        }
    }
    Table1Result { cells }
}

/// E3 — Table 2: {50th, 95th} percentile PLT difference between
/// single-server and multi-origin replay, across 9 (rate × delay)
/// configurations.
pub struct Table2Cell {
    pub mbps: f64,
    pub delay_ms: u64,
    pub median_diff_pct: f64,
    pub p95_diff_pct: f64,
}

pub struct Table2Result {
    pub cells: Vec<Table2Cell>,
}

/// Run Table 2 over `n_sites` corpus sites.
pub fn table2(n_sites: usize, seed: u64) -> Table2Result {
    let plans = corpus_subset(n_sites, seed);
    let mut cells = Vec::new();
    for &mbps in &[1.0, 14.0, 25.0] {
        let trace = constant_rate(mbps, 1000);
        for &delay_ms in &[30u64, 120, 300] {
            let mut diffs = Vec::new();
            for (i, plan) in plans.iter().enumerate() {
                let site = materialize(plan);
                let net = NetSpec {
                    delay: Some(SimDuration::from_millis(delay_ms)),
                    link: Some(LinkSpec::symmetric(trace.clone())),
                    ..NetSpec::default()
                };
                let mut multi = LoadSpec::new(&site);
                multi.net = net.clone();
                multi.seed = seed.wrapping_add(i as u64);
                let m = run_page_load(&multi).plt.as_millis_f64();
                let mut single = LoadSpec::new(&site);
                single.net = net;
                single.replay = ReplayConfig {
                    mode: ReplayMode::SingleServer,
                    ..ReplayConfig::default()
                };
                single.seed = multi.seed;
                let s = run_page_load(&single).plt.as_millis_f64();
                diffs.push((s - m) / m * 100.0);
            }
            let mut summary = Summary::from_samples(diffs);
            cells.push(Table2Cell {
                mbps,
                delay_ms,
                median_diff_pct: summary.percentile(50.0),
                p95_diff_pct: summary.percentile(95.0),
            });
        }
    }
    Table2Result { cells }
}

/// E4 — Figure 3: PLT CDFs for an nytimes-like page on the "actual web"
/// versus multi-origin and single-server replay.
pub struct Fig3Result {
    pub web: Summary,
    pub multi: Summary,
    pub single: Summary,
}

impl Fig3Result {
    /// Median gap of multi-origin replay vs the web, percent.
    pub fn multi_gap_pct(&mut self) -> f64 {
        (self.multi.median() - self.web.median()) / self.web.median() * 100.0
    }

    /// Median gap of single-server replay vs the web, percent.
    pub fn single_gap_pct(&mut self) -> f64 {
        (self.single.median() - self.web.median()) / self.web.median() * 100.0
    }
}

/// Run Figure 3 with `loads` page loads per arm.
///
/// Loads shard across threads. The per-load minimum RTTs are drawn
/// serially up front from the same RNG stream the serial loop used, so
/// sharding leaves every load's conditions — and the summaries — exactly
/// as a serial run produces them.
pub fn fig3(loads: usize, seed: u64) -> Fig3Result {
    let plan = nytimes_like(seed);
    let site = materialize(&plan);
    // "For fair comparison, we record the minimum round trip time to
    // www.nytimes.com for each page load on the Web and use DelayShell
    // to emulate this for each page load with ReplayShell."
    let mut rtt_rng = RngStream::from_seed(seed).fork("min-rtt");
    let min_rtts: Vec<u64> = (0..loads)
        .map(|_| 8 + rtt_rng.gen_range_inclusive(0, 6))
        .collect();
    let per_load = parallel_map(&min_rtts, |i, &min_rtt_ms| {
        let delay = NetSpec::delay_ms(min_rtt_ms);
        let load_seed = seed.wrapping_mul(97).wrapping_add(i as u64);

        // Arm 1: the live web — same servers plus real-world variability:
        // per-origin path latency above the minimum and fast CDN think
        // time (lower than replay's CGI matcher).
        let mut web_spec = LoadSpec::new(&site);
        web_spec.net = delay.clone();
        web_spec.live_web = Some(LiveWebConfig::default());
        web_spec.replay.think_time = mm_web::live_think_time(&LiveWebConfig::default());
        web_spec.seed = load_seed;
        let web = run_page_load(&web_spec).plt.as_millis_f64();

        // Arm 2: multi-origin replay.
        let mut multi_spec = LoadSpec::new(&site);
        multi_spec.net = delay.clone();
        multi_spec.seed = load_seed;
        let multi = run_page_load(&multi_spec).plt.as_millis_f64();

        // Arm 3: single-server replay.
        let mut single_spec = LoadSpec::new(&site);
        single_spec.net = delay;
        single_spec.replay.mode = ReplayMode::SingleServer;
        single_spec.seed = load_seed;
        let single = run_page_load(&single_spec).plt.as_millis_f64();
        (web, multi, single)
    });
    Fig3Result {
        web: Summary::from_samples(per_load.iter().map(|s| s.0)),
        multi: Summary::from_samples(per_load.iter().map(|s| s.1)),
        single: Summary::from_samples(per_load.iter().map(|s| s.2)),
    }
}

/// E7 — the protocol-comparison experiment (the shape of the paper's §5
/// SPDY case study): PLT for HTTP/1.1 vs the mm-mux multiplexed
/// transport, swept over link rate × RTT, under otherwise-identical
/// emulated conditions.
pub struct FigMuxCell {
    pub mbps: f64,
    pub delay_ms: u64,
    /// One-way delay doubled: the RTT this cell emulates.
    pub rtt_ms: u64,
    pub http1: Summary,
    pub mux: Summary,
    /// Per-site paired speedup samples, percent (positive = mux faster):
    /// each site is loaded under both protocols with the same seed, so
    /// the paired difference is the experiment's primary statistic (the
    /// same design as Table 2's per-site single-vs-multi comparison).
    pub paired_speedup_pct: Summary,
}

impl FigMuxCell {
    /// Median PLT ratio HTTP/1.1 : mux. Above 1.0 means multiplexing is
    /// faster at this operating point.
    pub fn median_ratio(&mut self) -> f64 {
        self.http1.median() / self.mux.median()
    }

    /// Median of the per-site paired speedups, percent (positive = mux
    /// faster on the median site).
    pub fn median_speedup_pct(&mut self) -> f64 {
        self.paired_speedup_pct.median()
    }
}

pub struct FigMuxResult {
    pub cells: Vec<FigMuxCell>,
}

impl FigMuxResult {
    /// The cell for a given operating point.
    pub fn cell_mut(&mut self, mbps: f64, delay_ms: u64) -> Option<&mut FigMuxCell> {
        self.cells
            .iter_mut()
            .find(|c| c.mbps == mbps && c.delay_ms == delay_ms)
    }
}

/// The (link rate, one-way delay) grid figmux sweeps — the same grid as
/// Table 2, so the two experiments share operating points.
pub const FIGMUX_RATES_MBPS: [f64; 3] = [1.0, 14.0, 25.0];
/// One-way delays of the figmux sweep, ms.
pub const FIGMUX_DELAYS_MS: [u64; 3] = [30, 120, 300];

/// Run the protocol comparison over `n_sites` corpus sites. Per cell,
/// every site is loaded twice — HTTP/1.1 pools and one mux connection
/// per origin — with the same seed, server think time, and network.
/// Sites shard across threads with per-site seeds (serial-identical).
pub fn figmux(n_sites: usize, seed: u64) -> FigMuxResult {
    let plans = corpus_subset(n_sites, seed);
    let mut cells = Vec::new();
    for &mbps in &FIGMUX_RATES_MBPS {
        let trace = constant_rate(mbps, 1000);
        for &delay_ms in &FIGMUX_DELAYS_MS {
            let per_site = parallel_map(&plans, |i, plan| {
                let site = materialize(plan);
                let net = NetSpec {
                    delay: Some(SimDuration::from_millis(delay_ms)),
                    link: Some(LinkSpec::symmetric(trace.clone())),
                    ..NetSpec::default()
                };
                let mut h1 = LoadSpec::new(&site);
                h1.net = net.clone();
                h1.seed = seed.wrapping_add(i as u64);
                let http1 = run_page_load(&h1).plt.as_millis_f64();
                let mut mx = LoadSpec::new(&site);
                mx.net = net;
                mx.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
                mx.seed = h1.seed;
                let mux = run_page_load(&mx).plt.as_millis_f64();
                (http1, mux)
            });
            cells.push(FigMuxCell {
                mbps,
                delay_ms,
                rtt_ms: delay_ms * 2,
                http1: Summary::from_samples(per_site.iter().map(|s| s.0)),
                mux: Summary::from_samples(per_site.iter().map(|s| s.1)),
                paired_speedup_pct: Summary::from_samples(
                    per_site.iter().map(|&(h, m)| (h - m) / h * 100.0),
                ),
            });
        }
    }
    FigMuxResult { cells }
}

/// E8 — figcell: the cellular workload. Mahimahi's headline use case is
/// evaluating protocols over recorded cellular links (bursty rate
/// variation, outages, deep buffers); the paper's Verizon/AT&T LTE traces
/// are not redistributable, so seeded Markov-modulated traces with the
/// same qualitative structure stand in (see `mm-trace::generate::cellular`
/// and DESIGN.md). The sweep crosses cellular regime × queue discipline ×
/// protocol × SACK, loading every site under all four
/// (protocol, recovery) arms with the same seed so the per-site paired
/// differences are the primary statistic.
pub struct FigCellCell {
    /// Cellular regime name (see [`figcell_regimes`]).
    pub regime: String,
    /// Queue-discipline label (see [`figcell_qdiscs`]).
    pub qdisc: String,
    pub http1: Summary,
    pub http1_sack: Summary,
    pub mux: Summary,
    pub mux_sack: Summary,
    /// Per-site paired speedup of SACK over NewReno under mux, percent
    /// (positive = SACK faster) — the experiment's headline number: does
    /// modern loss recovery restore the multiplexing win under loss?
    pub mux_sack_speedup_pct: Summary,
    /// Same pairing for the HTTP/1.1 pool.
    pub http1_sack_speedup_pct: Summary,
    /// Paired speedup of mux+SACK over HTTP/1.1+SACK, percent.
    pub mux_vs_http1_sack_pct: Summary,
}

pub struct FigCellResult {
    pub cells: Vec<FigCellCell>,
}

impl FigCellResult {
    /// The cell for a given (regime, qdisc) operating point.
    pub fn cell_mut(&mut self, regime: &str, qdisc: &str) -> Option<&mut FigCellCell> {
        self.cells
            .iter_mut()
            .find(|c| c.regime == regime && c.qdisc == qdisc)
    }
}

/// One-way propagation delay of the figcell sweep (cellular RTTs sat
/// around 60–120 ms in the paper's era).
pub const FIGCELL_DELAY_MS: u64 = 40;

/// The cellular regimes figcell sweeps: (name, trace parameters).
pub fn figcell_regimes() -> Vec<(&'static str, CellularParams)> {
    vec![
        (
            // Healthy LTE: high mean rate, mild variation, rare outages.
            "lte-good",
            CellularParams {
                mean_mbps: 14.0,
                volatility: 0.4,
                state_ms: 200,
                outage_prob: 0.01,
                period_ms: 60_000,
            },
        ),
        (
            // Loaded LTE: moderate rate, strong variation, real outages.
            "lte-variable",
            CellularParams {
                mean_mbps: 6.0,
                volatility: 0.8,
                state_ms: 150,
                outage_prob: 0.05,
                period_ms: 60_000,
            },
        ),
        (
            // Congested 3G-ish tail: low rate, deep fades.
            "umts-congested",
            CellularParams {
                mean_mbps: 2.2,
                volatility: 0.7,
                state_ms: 250,
                outage_prob: 0.08,
                period_ms: 60_000,
            },
        ),
    ]
}

/// The queue disciplines figcell sweeps: (label, kind). Infinite droptail
/// is the paper's configuration (no loss, deep bufferbloat); 32-packet
/// droptail models a bounded device buffer (loss under bursts — where
/// loss recovery matters); CoDel is the AQM answer.
pub fn figcell_qdiscs() -> Vec<(&'static str, QdiscKind)> {
    vec![
        ("inf-droptail", QdiscKind::Infinite),
        ("droptail32", QdiscKind::DropTailPackets(32)),
        ("codel", QdiscKind::Codel),
    ]
}

/// Run the cellular sweep over `n_sites` corpus sites. Per (regime,
/// qdisc) cell every site is loaded four times — {HTTP/1.1, mux} ×
/// {NewReno, SACK} — with the same seed, server think time, network and
/// trace. Sites shard across threads with per-site seeds
/// (serial-identical). The downlink follows the regime's cellular trace;
/// the uplink is a 1 Mbit/s CBR (uplink-limited requests are not the
/// phenomenon under study).
pub fn figcell(n_sites: usize, seed: u64) -> FigCellResult {
    let plans = corpus_subset(n_sites, seed);
    let uplink = constant_rate(1.0, 1000);
    let mut cells = Vec::new();
    for (regime_name, params) in figcell_regimes() {
        // One trace realization per regime, shared by every arm and site
        // so the pairing isolates protocol/recovery, not trace luck.
        let mut trace_rng = RngStream::from_seed(seed).fork("figcell").fork(regime_name);
        let downlink = cellular(&params, &mut trace_rng);
        for (qdisc_name, qdisc) in figcell_qdiscs() {
            let uplink = uplink.clone();
            let downlink = downlink.clone();
            let per_site = parallel_map(&plans, move |i, plan| {
                let site = materialize(plan);
                let load = |mux: bool, sack: bool| {
                    let mut spec = LoadSpec::new(&site);
                    spec.net = NetSpec {
                        delay: Some(SimDuration::from_millis(FIGCELL_DELAY_MS)),
                        link: Some(LinkSpec {
                            uplink: uplink.clone(),
                            downlink: downlink.clone(),
                            qdisc,
                        }),
                        ..NetSpec::default()
                    };
                    if mux {
                        spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
                    }
                    spec.tcp = Some(
                        TcpConfig::builder()
                            .recovery(if sack {
                                RecoveryTier::Sack
                            } else {
                                RecoveryTier::Reno
                            })
                            .build(),
                    );
                    spec.seed = seed.wrapping_add(i as u64);
                    run_page_load(&spec).plt.as_millis_f64()
                };
                (
                    load(false, false),
                    load(false, true),
                    load(true, false),
                    load(true, true),
                )
            });
            cells.push(FigCellCell {
                regime: regime_name.to_string(),
                qdisc: qdisc_name.to_string(),
                http1: Summary::from_samples(per_site.iter().map(|s| s.0)),
                http1_sack: Summary::from_samples(per_site.iter().map(|s| s.1)),
                mux: Summary::from_samples(per_site.iter().map(|s| s.2)),
                mux_sack: Summary::from_samples(per_site.iter().map(|s| s.3)),
                mux_sack_speedup_pct: Summary::from_samples(
                    per_site.iter().map(|&(_, _, m, ms)| (m - ms) / m * 100.0),
                ),
                http1_sack_speedup_pct: Summary::from_samples(
                    per_site.iter().map(|&(h, hs, _, _)| (h - hs) / h * 100.0),
                ),
                mux_vs_http1_sack_pct: Summary::from_samples(
                    per_site
                        .iter()
                        .map(|&(_, hs, _, ms)| (hs - ms) / hs * 100.0),
                ),
            });
        }
    }
    FigCellResult { cells }
}

/// E9 — figrack: does modern time-based loss detection (RACK-TLP +
/// F-RTO, `RecoveryTier::RackTlp`) fix the cells where plain SACK did
/// not pay? The figcell sweep left an honest mixed result under CoDel
/// (0%, −23%, +5% across cellular regimes): AQM keeps queues short, so
/// recovery *speed* buys little, and without spurious-RTO detection the
/// RTO tail — and its unrecoverable backoff — dominates serial mux
/// chains. figrack reruns the figcell cellular regimes over the two
/// loss-producing qdiscs with the recovery *tier* as the swept axis,
/// under the mux protocol (one connection per origin: the configuration
/// most exposed to tail loss and spurious timeouts). Traces, seeds and
/// per-site pairing are identical to figcell, so the Sack column here
/// reproduces figcell's mux numbers exactly and the RackTlp column is
/// directly comparable.
pub struct FigRackCell {
    pub regime: String,
    pub qdisc: String,
    /// PLT summaries per recovery tier, all under mux.
    pub reno: Summary,
    pub sack: Summary,
    pub racktlp: Summary,
    /// Per-site paired speedup of SACK over NewReno, percent (positive =
    /// SACK faster) — figcell's `mux_sack_speedup_pct`, the PR 3
    /// baseline the RackTlp column must not fall below.
    pub sack_speedup_pct: Summary,
    /// Per-site paired speedup of RackTlp over NewReno, percent.
    pub racktlp_speedup_pct: Summary,
    /// Per-site paired speedup of RackTlp over SACK, percent (positive =
    /// the time-based machinery pays on top of selective retransmission).
    pub racktlp_vs_sack_pct: Summary,
    /// PLT under CUBIC congestion control at the RackTlp tier (same
    /// traces/seeds) — the arm that exercises CUBIC's F-RTO
    /// `on_spurious_timeout` undo in an experiment, not just unit tests
    /// (every other column runs Reno CC).
    pub cubic_racktlp: Summary,
    /// Per-site paired speedup of CUBIC over Reno CC, both at the
    /// RackTlp tier, percent (positive = CUBIC faster).
    pub cubic_vs_reno_cc_pct: Summary,
}

pub struct FigRackResult {
    pub cells: Vec<FigRackCell>,
}

impl FigRackResult {
    /// The cell for a given (regime, qdisc) operating point.
    pub fn cell_mut(&mut self, regime: &str, qdisc: &str) -> Option<&mut FigRackCell> {
        self.cells
            .iter_mut()
            .find(|c| c.regime == regime && c.qdisc == qdisc)
    }
}

/// The loss-producing queue disciplines figrack sweeps (infinite
/// droptail never drops, so recovery tiers cannot differ there beyond
/// outage-RTO tails figcell already measures).
pub fn figrack_qdiscs() -> Vec<(&'static str, QdiscKind)> {
    vec![
        ("droptail32", QdiscKind::DropTailPackets(32)),
        ("codel", QdiscKind::Codel),
    ]
}

/// Run the recovery-tier sweep over `n_sites` corpus sites. Per (regime,
/// qdisc) cell every site is loaded three times — mux × {Reno, Sack,
/// RackTlp} — with the same seed, think time, network and trace
/// realization as figcell (same RNG forks), so cross-experiment columns
/// line up. Sites shard across threads with per-site seeds
/// (serial-identical).
pub fn figrack(n_sites: usize, seed: u64) -> FigRackResult {
    let plans = corpus_subset(n_sites, seed);
    let uplink = constant_rate(1.0, 1000);
    let mut cells = Vec::new();
    for (regime_name, params) in figcell_regimes() {
        // Identical trace realization to figcell: same forks, same seed.
        let mut trace_rng = RngStream::from_seed(seed).fork("figcell").fork(regime_name);
        let downlink = cellular(&params, &mut trace_rng);
        for (qdisc_name, qdisc) in figrack_qdiscs() {
            let uplink = uplink.clone();
            let downlink = downlink.clone();
            let per_site = parallel_map(&plans, move |i, plan| {
                let site = materialize(plan);
                let load = |cc: CcAlgorithm, recovery: RecoveryTier| {
                    let mut spec = LoadSpec::new(&site);
                    spec.net = NetSpec {
                        delay: Some(SimDuration::from_millis(FIGCELL_DELAY_MS)),
                        link: Some(LinkSpec {
                            uplink: uplink.clone(),
                            downlink: downlink.clone(),
                            qdisc,
                        }),
                        ..NetSpec::default()
                    };
                    spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
                    spec.tcp = Some(TcpConfig::builder().cc(cc).recovery(recovery).build());
                    spec.seed = seed.wrapping_add(i as u64);
                    run_page_load(&spec).plt.as_millis_f64()
                };
                (
                    load(CcAlgorithm::Reno, RecoveryTier::Reno),
                    load(CcAlgorithm::Reno, RecoveryTier::Sack),
                    load(CcAlgorithm::Reno, RecoveryTier::RackTlp),
                    load(CcAlgorithm::Cubic, RecoveryTier::RackTlp),
                )
            });
            cells.push(FigRackCell {
                regime: regime_name.to_string(),
                qdisc: qdisc_name.to_string(),
                reno: Summary::from_samples(per_site.iter().map(|s| s.0)),
                sack: Summary::from_samples(per_site.iter().map(|s| s.1)),
                racktlp: Summary::from_samples(per_site.iter().map(|s| s.2)),
                sack_speedup_pct: Summary::from_samples(
                    per_site.iter().map(|&(r, s, _, _)| (r - s) / r * 100.0),
                ),
                racktlp_speedup_pct: Summary::from_samples(
                    per_site.iter().map(|&(r, _, k, _)| (r - k) / r * 100.0),
                ),
                racktlp_vs_sack_pct: Summary::from_samples(
                    per_site.iter().map(|&(_, s, k, _)| (s - k) / s * 100.0),
                ),
                cubic_racktlp: Summary::from_samples(per_site.iter().map(|s| s.3)),
                cubic_vs_reno_cc_pct: Summary::from_samples(
                    per_site.iter().map(|&(_, _, k, c)| (k - c) / k * 100.0),
                ),
            });
        }
    }
    FigRackResult { cells }
}

/// E10 — figbbr: the buffer-sweep for model-based congestion control.
/// The figcell/figrack story so far is loss-*recovery*: how fast a
/// loss-based sender repairs the damage its own bursts cause. figbbr
/// asks the question one layer down — does a sender that never causes
/// the damage (delivery-rate model + pacing, `CcAlgorithm::Bbr`) beat
/// loss-based CC where the damage is worst (deep droptail buffers),
/// without giving back the AQM column, and how does CUBIC (the era's
/// Linux default, previously unswept — ROADMAP's open question) slot
/// in? The sweep crosses the figcell cellular regimes × {droptail32,
/// droptail256, CoDel} × CC {Reno, Cubic, Bbr} × the full recovery-tier
/// ladder, under mux, with figcell's exact traces, seeds and per-site
/// pairing — so the (Reno CC, RackTlp) column over droptail32/CoDel
/// reproduces figrack's racktlp column cell-for-cell.
pub struct FigBbrArm {
    /// Congestion-control label ("reno" | "cubic" | "bbr").
    pub cc: &'static str,
    /// Recovery-tier label ("reno" | "sack" | "racktlp").
    pub tier: &'static str,
    pub plt: Summary,
}

pub struct FigBbrCell {
    pub regime: String,
    pub qdisc: String,
    /// One PLT summary per (cc, tier) arm, cc-major in
    /// [`FIGBBR_CCS`] × [`FIGBBR_TIERS`] order.
    pub arms: Vec<FigBbrArm>,
    /// Per-site paired speedup of BBR over Reno CC (both at the RackTlp
    /// tier), percent — the headline: model-based pacing vs loss-based
    /// CC with recovery held at the modern tier.
    pub bbr_vs_reno_pct: Summary,
    /// Per-site paired speedup of CUBIC over Reno CC (both RackTlp).
    pub cubic_vs_reno_pct: Summary,
    /// Per-site paired speedup of BBR over CUBIC (both RackTlp).
    pub bbr_vs_cubic_pct: Summary,
}

impl FigBbrCell {
    /// The PLT summary for a (cc, tier) arm.
    pub fn arm_mut(&mut self, cc: &str, tier: &str) -> Option<&mut Summary> {
        self.arms
            .iter_mut()
            .find(|a| a.cc == cc && a.tier == tier)
            .map(|a| &mut a.plt)
    }
}

pub struct FigBbrResult {
    pub cells: Vec<FigBbrCell>,
}

impl FigBbrResult {
    /// The cell for a given (regime, qdisc) operating point.
    pub fn cell_mut(&mut self, regime: &str, qdisc: &str) -> Option<&mut FigBbrCell> {
        self.cells
            .iter_mut()
            .find(|c| c.regime == regime && c.qdisc == qdisc)
    }
}

/// The congestion controllers figbbr sweeps. BBR implies pacing (see
/// `TcpConfig::pacing`); the loss-based arms run unpaced, as deployed.
pub const FIGBBR_CCS: [(&str, CcAlgorithm); 3] = [
    ("reno", CcAlgorithm::Reno),
    ("cubic", CcAlgorithm::Cubic),
    ("bbr", CcAlgorithm::Bbr),
];

/// The recovery tiers figbbr sweeps (the full ladder: CUBIC × recovery
/// interactions are half the experiment's point).
pub const FIGBBR_TIERS: [(&str, RecoveryTier); 3] = [
    ("reno", RecoveryTier::Reno),
    ("sack", RecoveryTier::Sack),
    ("racktlp", RecoveryTier::RackTlp),
];

/// The queue disciplines figbbr sweeps: figrack's two loss-producing
/// qdiscs plus a *deep* bounded buffer — 256 packets ≈ several seconds
/// at cellular rates, the bufferbloat regime where a loss-based sender
/// must fill the whole queue before it learns anything and a
/// model-based one should never build the queue at all.
pub fn figbbr_qdiscs() -> Vec<(&'static str, QdiscKind)> {
    vec![
        ("droptail32", QdiscKind::DropTailPackets(32)),
        ("droptail256", QdiscKind::DropTailPackets(256)),
        ("codel", QdiscKind::Codel),
    ]
}

/// Run the CC × recovery buffer sweep over `n_sites` corpus sites. Per
/// (regime, qdisc) cell every site is loaded nine times — CC {Reno,
/// Cubic, Bbr} × tier {Reno, Sack, RackTlp}, mux — with figcell's seed,
/// think time, network and trace realization (same RNG forks), so
/// figrack/figcell columns line up cell-for-cell. Sites shard across
/// threads with per-site seeds (serial-identical).
pub fn figbbr(n_sites: usize, seed: u64) -> FigBbrResult {
    let plans = corpus_subset(n_sites, seed);
    let uplink = constant_rate(1.0, 1000);
    let mut cells = Vec::new();
    for (regime_name, params) in figcell_regimes() {
        // Identical trace realization to figcell/figrack: same forks.
        let mut trace_rng = RngStream::from_seed(seed).fork("figcell").fork(regime_name);
        let downlink = cellular(&params, &mut trace_rng);
        for (qdisc_name, qdisc) in figbbr_qdiscs() {
            let uplink = uplink.clone();
            let downlink = downlink.clone();
            let per_site = parallel_map(&plans, move |i, plan| {
                let site = materialize(plan);
                let load = |cc: CcAlgorithm, recovery: RecoveryTier| {
                    let mut spec = LoadSpec::new(&site);
                    spec.net = NetSpec {
                        delay: Some(SimDuration::from_millis(FIGCELL_DELAY_MS)),
                        link: Some(LinkSpec {
                            uplink: uplink.clone(),
                            downlink: downlink.clone(),
                            qdisc,
                        }),
                        ..NetSpec::default()
                    };
                    spec.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
                    spec.tcp = Some(TcpConfig::builder().cc(cc).recovery(recovery).build());
                    spec.seed = seed.wrapping_add(i as u64);
                    run_page_load(&spec).plt.as_millis_f64()
                };
                let mut plts = Vec::with_capacity(FIGBBR_CCS.len() * FIGBBR_TIERS.len());
                for (_, cc) in FIGBBR_CCS {
                    for (_, tier) in FIGBBR_TIERS {
                        plts.push(load(cc, tier));
                    }
                }
                plts
            });
            // cc-major arm index; the RackTlp tier is index 2.
            let idx = |cc: usize, tier: usize| cc * FIGBBR_TIERS.len() + tier;
            let paired = |a: usize, b: usize| {
                Summary::from_samples(per_site.iter().map(|s| (s[a] - s[b]) / s[a] * 100.0))
            };
            let mut arms = Vec::new();
            for (ci, (cc_name, _)) in FIGBBR_CCS.iter().enumerate() {
                for (ti, (tier_name, _)) in FIGBBR_TIERS.iter().enumerate() {
                    arms.push(FigBbrArm {
                        cc: cc_name,
                        tier: tier_name,
                        plt: Summary::from_samples(per_site.iter().map(|s| s[idx(ci, ti)])),
                    });
                }
            }
            cells.push(FigBbrCell {
                regime: regime_name.to_string(),
                qdisc: qdisc_name.to_string(),
                arms,
                bbr_vs_reno_pct: paired(idx(0, 2), idx(2, 2)),
                cubic_vs_reno_pct: paired(idx(0, 2), idx(1, 2)),
                bbr_vs_cubic_pct: paired(idx(1, 2), idx(2, 2)),
            });
        }
    }
    FigBbrResult { cells }
}

/// E5 — §4's corpus statistic: the distribution of physical servers per
/// website across the 500-site corpus.
pub fn corpus_stats(n_sites: usize, seed: u64) -> ServerDistribution {
    let plans = generate_plans(&CorpusConfig {
        n_sites,
        seed,
        single_server_sites: if n_sites >= 500 { 9 } else { n_sites / 55 },
        ..CorpusConfig::default()
    });
    server_distribution(&plans)
}

/// One cell of the figshare contention sweep: `n_users` concurrent
/// users through one shared bottleneck under a (qdisc, CC mix,
/// protocol) configuration.
pub struct FigShareCell {
    pub n_users: usize,
    pub qdisc: String,
    pub cc_mix: String,
    pub protocol: String,
    /// Jain's fairness index over per-user bulk goodputs.
    pub fairness: f64,
    /// Interpolated PLT percentiles across the user population, ms.
    pub plt_p50_ms: f64,
    pub plt_p95_ms: f64,
    pub plt_p99_ms: f64,
    /// Fraction of aggregate bulk goodput taken by BBR users.
    pub bbr_share: f64,
    /// High-water backlog of the bottleneck downlink queue, packets.
    pub max_queue_packets: usize,
}

pub struct FigShareResult {
    pub cells: Vec<FigShareCell>,
}

/// Bytes of each user's companion bulk download.
pub const FIGSHARE_BULK_BYTES: u64 = 2_000_000;
/// The shared bottleneck: 40/12 Mbit/s, [`FIGCELL_DELAY_MS`] each way.
pub const FIGSHARE_DOWN_MBPS: f64 = 40.0;
pub const FIGSHARE_UP_MBPS: f64 = 12.0;
/// Users arrive staggered across this window.
pub const FIGSHARE_ARRIVAL_WINDOW_MS: u64 = 2_000;

/// The swept CC population mixes.
pub fn figshare_mixes() -> Vec<mahimahi::fleet::CcMix> {
    use mahimahi::fleet::CcMix;
    vec![CcMix::AllReno, CcMix::AllBbr, CcMix::BbrRenoSplit]
}

/// The population sizes run for a `figshare <n>` invocation: every
/// default rung (2, 16, 64) no larger than `n`, plus `n` itself — so
/// `figshare 1024` adds the 1024-user arm behind the size flag.
pub fn figshare_populations(n: usize) -> Vec<usize> {
    let mut ns: Vec<usize> = [2usize, 16, 64]
        .iter()
        .copied()
        .filter(|&k| k <= n)
        .collect();
    if !ns.contains(&n) {
        ns.push(n);
    }
    ns.sort_unstable();
    ns
}

/// E-share — the population-scale contention sweep: `n_users` users,
/// each a page load plus a bulk download, through one shared
/// delay+link bottleneck, over qdisc {droptail32, droptail256, codel}
/// × CC mix {all-Reno, all-BBR, 50/50 BBR+Reno} × protocol {http1,
/// mux}. `smoke` restricts to the given population and two cells (the
/// CI configuration). Cells run in parallel; each is an independent
/// deterministic world seeded by `seed`, so user `i` arrives at the
/// same instant in every cell (per-user pairing).
pub fn figshare(n: usize, smoke: bool, seed: u64) -> FigShareResult {
    use mahimahi::fleet::{run_fleet, CcMix, FleetSpec};

    let plan = corpus_subset(1, seed).remove(0);
    let populations = if smoke {
        vec![n]
    } else {
        figshare_populations(n)
    };
    struct Cell {
        n_users: usize,
        qdisc_name: &'static str,
        qdisc: QdiscKind,
        mix: CcMix,
        protocol: &'static str,
    }
    let mut grid = Vec::new();
    for &n_users in &populations {
        for (qdisc_name, qdisc) in figbbr_qdiscs() {
            for mix in figshare_mixes() {
                for protocol in ["http1", "mux"] {
                    if smoke
                        && !matches!(
                            (qdisc_name, mix, protocol),
                            ("droptail256", CcMix::BbrRenoSplit, "mux")
                                | ("codel", CcMix::AllReno, "http1")
                        )
                    {
                        continue;
                    }
                    grid.push(Cell {
                        n_users,
                        qdisc_name,
                        qdisc,
                        mix,
                        protocol,
                    });
                }
            }
        }
    }

    let cells = parallel_map(&grid, |_, cell| {
        let site = materialize(&plan);
        let mut load = LoadSpec::new(&site);
        load.net = NetSpec {
            delay: Some(SimDuration::from_millis(FIGCELL_DELAY_MS)),
            link: Some(LinkSpec {
                uplink: constant_rate(FIGSHARE_UP_MBPS, 1000),
                downlink: constant_rate(FIGSHARE_DOWN_MBPS, 1000),
                qdisc: cell.qdisc,
            }),
            ..NetSpec::default()
        };
        if cell.protocol == "mux" {
            load.browser.protocol = ProtocolMode::Mux(MuxConfig::default());
        }
        load.seed = seed;
        let r = run_fleet(&FleetSpec {
            load,
            n_users: cell.n_users,
            cc_mix: cell.mix,
            bulk_bytes: FIGSHARE_BULK_BYTES,
            arrival_window: SimDuration::from_millis(FIGSHARE_ARRIVAL_WINDOW_MS),
        });
        FigShareCell {
            n_users: cell.n_users,
            qdisc: cell.qdisc_name.to_string(),
            cc_mix: cell.mix.label().to_string(),
            protocol: cell.protocol.to_string(),
            fairness: r.fairness(),
            plt_p50_ms: r.plt_percentile(50.0),
            plt_p95_ms: r.plt_percentile(95.0),
            plt_p99_ms: r.plt_percentile(99.0),
            bbr_share: r.bbr_goodput_share(),
            max_queue_packets: r.max_downlink_queue_packets,
        }
    });
    FigShareResult { cells }
}

/// E-soak — figsoak: the long-lived serving soak. Every other
/// experiment builds a world per measurement; figsoak keeps ONE
/// multi-origin replay world serving open-loop Poisson session arrivals
/// for simulated hours and reports production-posture numbers:
/// requests/sec, session PLT tails, and the leak-detector high-water
/// marks (server connection table, client socket pool, retransmission
/// queues, SACK scoreboards). Everything observable is exported as a
/// Prometheus text snapshot from the soak's metrics registry.
pub struct FigSoakReport {
    pub result: mahimahi::soak::SoakResult,
    /// Prometheus text snapshot of the soak registry (validated).
    pub snapshot: String,
}

/// Mean session inter-arrival time (open loop).
pub const FIGSOAK_ARRIVAL_MEAN_MS: u64 = 1_000;
/// Client slot-pool size: the admission limit on concurrent sessions.
pub const FIGSOAK_MAX_LIVE: usize = 32;
/// Bound on the sampled server connection-table high-water mark: the
/// slot pool times a per-session connection budget. A session against
/// the corpus site opens an HTTP/1.1 pool per origin (~180 connections
/// across ~30 origins), and closed connections linger until the next
/// maintenance pass, so the budget is ~200 per concurrent session. The
/// point of the assertion is that occupancy is bounded by concurrency
/// — a 4x longer soak peaks at the same mark — not by run length.
pub const FIGSOAK_CONN_BOUND: usize = FIGSOAK_MAX_LIVE * 200;

/// Run the soak for `minutes` of simulated time over the figshare
/// bottleneck (40/12 Mbit/s, 80 ms RTT, deep droptail buffer). Panics
/// if the world leaks — connections still tabled after the drain, or a
/// connection-table high-water mark beyond the concurrency bound — or
/// if the metrics snapshot fails Prometheus text validation, so every
/// invocation (CI smoke included) is a memory-bounds assertion.
///
/// With `audit`, an [`mm_audit::Auditor`] rides the soak's TCP metrics
/// stream (metrics-only: the soak has no packet tap or span recorder),
/// checking the window, pipe, RACK, pacing and SACK invariants on every
/// sampled connection, and the violation total is exported into the
/// snapshot as `audit_violations_total`.
pub fn figsoak(minutes: usize, seed: u64, audit: bool) -> FigSoakReport {
    use mahimahi::metrics::{validate_text, FanoutSink, MetricsHandle, Registry, RegistrySink};
    use mahimahi::soak::{run_soak, SoakSpec};

    let plan = corpus_subset(1, seed).remove(0);
    let site = materialize(&plan);
    let registry = Registry::new();
    let mut spec = SoakSpec::new(&site);
    spec.delay = Some(SimDuration::from_millis(FIGCELL_DELAY_MS));
    spec.link = Some(LinkSpec {
        uplink: constant_rate(FIGSHARE_UP_MBPS, 1000),
        downlink: constant_rate(FIGSHARE_DOWN_MBPS, 1000),
        qdisc: QdiscKind::DropTailPackets(256),
    });
    spec.arrival_mean = SimDuration::from_millis(FIGSOAK_ARRIVAL_MEAN_MS);
    spec.duration = SimDuration::from_secs(minutes as u64 * 60);
    spec.max_live_sessions = FIGSOAK_MAX_LIVE;
    spec.seed = seed;
    let auditor = audit.then(|| mm_audit::Auditor::for_load(0));
    if let Some(a) = &auditor {
        // The sink run_soak would install, with the auditor fanned in
        // behind it (sinks only observe either way).
        spec.tcp = Some(
            mahimahi::net::TcpConfig::default()
                .to_builder()
                .metrics(MetricsHandle::new(FanoutSink::new(vec![
                    MetricsHandle::new(RegistrySink::new(registry.clone())),
                    a.metrics_handle(),
                ])))
                .build(),
        );
    }

    let result = run_soak(&spec, &registry);
    if let Some(a) = &auditor {
        let report = a.finish();
        registry
            .counter(
                "audit_violations_total",
                "Conformance violations observed by the soak's online auditor.",
            )
            .add(report.violations.len() as u64 + report.dropped_violations);
        for v in report.violations.iter().take(8) {
            eprintln!("  audit violation [{}] {}: {}", v.code, v.scope, v.detail);
        }
    }
    let snapshot = registry.encode();
    validate_text(&snapshot).expect("soak snapshot must be valid Prometheus text");

    // The soak's reason to exist: a long-serving world must not
    // accumulate state. Anything tabled after the drain, or occupancy
    // beyond what live concurrency explains, is a leak.
    assert_eq!(
        result.server_conns_final, 0,
        "server connection table not empty after drain"
    );
    assert_eq!(
        result.client_sockets_final, 0,
        "client socket pool not empty after drain"
    );
    assert!(
        result.server_conn_high_water <= FIGSOAK_CONN_BOUND,
        "server connection high-water {} exceeds concurrency bound {}",
        result.server_conn_high_water,
        FIGSOAK_CONN_BOUND
    );
    FigSoakReport { result, snapshot }
}

/// Deterministic corpus subset used by multi-site experiments: sites are
/// drawn evenly across the corpus so the subset spans small and large
/// sites.
pub fn corpus_subset(n_sites: usize, seed: u64) -> Vec<SitePlan> {
    let full = generate_plans(&CorpusConfig {
        n_sites: 500,
        seed,
        ..CorpusConfig::default()
    });
    if n_sites >= full.len() {
        return full;
    }
    let stride = full.len() / n_sites;
    full.into_iter()
        .step_by(stride.max(1))
        .take(n_sites)
        .collect()
}
