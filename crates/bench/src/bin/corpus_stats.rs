//! §4 corpus statistic: the distribution of physical servers per website
//! across the (synthetic) Alexa US Top 500.
//!
//! Paper: median 20 servers, 95th percentile 51, only 9 single-server
//! pages.

use bench::cli::ExperimentSpec;
use bench::corpus_stats;
use bench::report::paper_vs_measured;

fn main() {
    ExperimentSpec {
        name: "corpus_stats",
        default_sites: 500,
        title: |n| format!("§4 corpus statistics ({n} sites)"),
        run: |n_sites, seed| {
            let d = corpus_stats(n_sites, seed);
            paper_vs_measured("median servers per site", "20", &d.median.to_string());
            paper_vs_measured("95th percentile servers", "51", &d.p95.to_string());
            paper_vs_measured(
                "single-server pages",
                "9",
                &d.single_server_sites.to_string(),
            );
            println!("  max servers on one site: {}", d.max);
            // Histogram.
            let mut hist = [0usize; 13];
            for &c in &d.counts {
                hist[(c / 10).min(12)] += 1;
            }
            println!("\n  servers/site histogram (10-wide bins):");
            for (i, &n) in hist.iter().enumerate() {
                if n > 0 {
                    println!(
                        "  {:>3}-{:<3} {}",
                        i * 10,
                        i * 10 + 9,
                        "#".repeat(n / 2 + 1)
                    );
                }
            }
            // No BENCH JSON: corpus_stats is a corpus descriptor, not a
            // perf-trajectory bench.
            None
        },
    }
    .main()
}
