//! Figure 2 / §3 "Low overhead": CDF of page load time for bare
//! ReplayShell vs nested DelayShell-0ms vs nested LinkShell-1000Mbit/s
//! over the synthetic Alexa-like corpus.
//!
//! Paper: DelayShell 0 ms adds 0.15% to median PLT; LinkShell at
//! 1000 Mbit/s adds 1.5%.

use bench::cli::ExperimentSpec;
use bench::fig2;
use bench::report::{ms, paper_vs_measured, pct, plot_cdfs, summary_metrics};

fn main() {
    ExperimentSpec {
        name: "fig2",
        default_sites: 500,
        title: |n| format!("Figure 2 — shell overhead on page load time ({n} sites)"),
        run: |n_sites, seed| {
            let mut r = fig2(n_sites, seed);
            println!("  bare ReplayShell:       median {}", ms(r.replay.median()));
            println!("  + DelayShell 0 ms:      median {}", ms(r.delay0.median()));
            println!(
                "  + LinkShell 1000 Mbps:  median {}",
                ms(r.link1000.median())
            );
            println!();
            paper_vs_measured(
                "DelayShell 0 ms overhead at median",
                "+0.15%",
                &pct(r.delay0_overhead_pct()),
            );
            paper_vs_measured(
                "LinkShell 1000 Mbit/s overhead at median",
                "+1.5%",
                &pct(r.link1000_overhead_pct()),
            );
            println!();
            let mut metrics = Vec::new();
            metrics.push(("delay0_overhead_pct".to_string(), r.delay0_overhead_pct()));
            metrics.push((
                "link1000_overhead_pct".to_string(),
                r.link1000_overhead_pct(),
            ));
            let (mut a, mut b, mut c) = (r.replay, r.delay0, r.link1000);
            metrics.extend(summary_metrics("replay", &mut a));
            metrics.extend(summary_metrics("delay0", &mut b));
            metrics.extend(summary_metrics("link1000", &mut c));
            plot_cdfs(&mut [
                ("ReplayShell", &mut a),
                ("DelayShell 0 ms", &mut b),
                ("LinkShell 1000 Mbits/s", &mut c),
            ]);
            Some(metrics)
        },
    }
    .main()
}
