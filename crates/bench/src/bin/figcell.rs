//! figcell — the cellular workload: page loads over synthesized cellular
//! traces (Markov-modulated rate, outages — stand-ins for the paper's
//! Verizon/AT&T LTE recordings), swept over cellular regime × queue
//! discipline × protocol × loss recovery (NewReno vs SACK).
//!
//! The question figcell answers: multiplexing concentrates a page onto
//! one connection, so one loss event stalls everything — does modern
//! (SACK) loss recovery restore the multiplexing win under lossy
//! bounded-buffer cellular conditions? Writes `BENCH_figcell.json`.

use bench::cli::ExperimentSpec;
use bench::report::{cell_key, ms, summary_metrics};
use bench::{figcell, FIGCELL_DELAY_MS};

fn main() {
    ExperimentSpec {
        name: "figcell",
        default_sites: 24,
        title: |n| {
            format!(
                "figcell — protocol × recovery over cellular traces ({n} sites, {}ms RTT)",
                FIGCELL_DELAY_MS * 2
            )
        },
        run: |n_sites, seed| {
            let mut r = figcell(n_sites, seed);
            println!(
                "  {:<15} {:<12} | {:>10} {:>10} {:>10} {:>10} | {:>9} {:>9}",
                "regime",
                "qdisc",
                "http1",
                "http1+sack",
                "mux",
                "mux+sack",
                "mux:sack%",
                "h1:sack%"
            );
            let mut metrics: Vec<(String, f64)> = Vec::new();
            for cell in &mut r.cells {
                println!(
                    "  {:<15} {:<12} | {:>10} {:>10} {:>10} {:>10} | {:>8.1}% {:>8.1}%",
                    cell.regime,
                    cell.qdisc,
                    ms(cell.http1.median()),
                    ms(cell.http1_sack.median()),
                    ms(cell.mux.median()),
                    ms(cell.mux_sack.median()),
                    cell.mux_sack_speedup_pct.median(),
                    cell.http1_sack_speedup_pct.median(),
                );
                let prefix = cell_key(&cell.regime, &cell.qdisc);
                metrics.extend(summary_metrics(&format!("http1_{prefix}"), &mut cell.http1));
                metrics.extend(summary_metrics(
                    &format!("http1_sack_{prefix}"),
                    &mut cell.http1_sack,
                ));
                metrics.extend(summary_metrics(&format!("mux_{prefix}"), &mut cell.mux));
                metrics.extend(summary_metrics(
                    &format!("mux_sack_{prefix}"),
                    &mut cell.mux_sack,
                ));
                metrics.push((
                    format!("mux_sack_speedup_pct_{prefix}"),
                    cell.mux_sack_speedup_pct.median(),
                ));
                metrics.push((
                    format!("http1_sack_speedup_pct_{prefix}"),
                    cell.http1_sack_speedup_pct.median(),
                ));
                metrics.push((
                    format!("mux_vs_http1_sack_pct_{prefix}"),
                    cell.mux_vs_http1_sack_pct.median(),
                ));
            }
            println!();
            println!("  mux:sack% = median per-site paired speedup of SACK over NewReno under mux");
            println!(
                "  h1:sack%  = the same pairing for the HTTP/1.1 pool (positive = SACK faster);"
            );
            println!("  every site is loaded under all four arms with the same seed and trace.");
            Some(metrics)
        },
    }
    .main()
}
