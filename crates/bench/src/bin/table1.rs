//! Table 1 / §3 "Reproducibility": mean ± σ page load time for
//! CNBC-like and wikiHow-like pages, 100 loads each on two machines.
//!
//! Paper: means within 0.5% across machines; σ within 1.6% of the mean.

use bench::cli::ExperimentSpec;
use bench::report::paper_vs_measured;
use bench::table1;

fn main() {
    ExperimentSpec {
        name: "table1",
        default_sites: 100,
        title: |n| format!("Table 1 — reproducibility across host machines ({n} loads/cell)"),
        run: |loads, seed| {
            let r = table1(loads, seed);
            println!("  {:<18} {:>14} {:>14}", "", "Machine 1", "Machine 2");
            for site in ["www.cnbc.com", "www.wikihow.com"] {
                let row: Vec<String> = r
                    .cells
                    .iter()
                    .filter(|(s, _, _)| s == site)
                    .map(|(_, _, sum)| format!("{:.0}±{:.0} ms", sum.mean(), sum.std_dev()))
                    .collect();
                println!("  {:<18} {:>14} {:>14}", site, row[0], row[1]);
            }
            println!();
            paper_vs_measured(
                "worst cross-machine mean difference",
                "< 0.5%",
                &format!("{:.3}%", r.worst_cross_machine_mean_diff() * 100.0),
            );
            paper_vs_measured(
                "worst σ / mean",
                "≤ 1.6%",
                &format!("{:.3}%", r.worst_cv() * 100.0),
            );
            let mut metrics = vec![
                (
                    "worst_cross_machine_mean_diff_pct".to_string(),
                    r.worst_cross_machine_mean_diff() * 100.0,
                ),
                ("worst_cv_pct".to_string(), r.worst_cv() * 100.0),
            ];
            for (site, machine, summary) in &r.cells {
                let key = format!(
                    "{}_{}",
                    site.replace(['.', '-'], "_"),
                    machine.to_lowercase().replace(' ', "_")
                );
                metrics.push((format!("{key}_mean_ms"), summary.mean()));
                metrics.push((format!("{key}_std_ms"), summary.std_dev()));
            }
            Some(metrics)
        },
    }
    .main()
}
