//! Table 2 / §4: {50th, 95th} percentile page-load-time difference when
//! the multi-origin nature of sites is *not* preserved (single-server
//! replay), across 9 network configurations.
//!
//! Paper (each cell "median%, p95%"):
//!              30 ms          120 ms        300 ms
//!   1 Mbit/s   1.6%, 27.6%    1.7%, 10.8%   2.1%, 9.7%
//!   14 Mbit/s  19.3%, 127.3%  6.2%, 42.4%   3.3%, 20.3%
//!   25 Mbit/s  21.4%, 111.6%  6.3%, 51.8%   2.6%, 15.0%

use bench::cli::ExperimentSpec;
use bench::table2;

const PAPER: [[(f64, f64); 3]; 3] = [
    [(1.6, 27.6), (1.7, 10.8), (2.1, 9.7)],
    [(19.3, 127.3), (6.2, 42.4), (3.3, 20.3)],
    [(21.4, 111.6), (6.3, 51.8), (2.6, 15.0)],
];

fn main() {
    ExperimentSpec {
        name: "table2",
        default_sites: 60,
        title: |n| format!("Table 2 — PLT inflation without multi-origin preservation ({n} sites)"),
        run: |n_sites, seed| {
            let r = table2(n_sites, seed);
            println!(
                "  {:<11} {:>24} {:>24} {:>24}",
                "", "30 ms", "120 ms", "300 ms"
            );
            for (row, &mbps) in [1.0, 14.0, 25.0].iter().enumerate() {
                let mut cols = Vec::new();
                for (col, &delay) in [30u64, 120, 300].iter().enumerate() {
                    let cell = r
                        .cells
                        .iter()
                        .find(|c| c.mbps == mbps && c.delay_ms == delay)
                        .unwrap();
                    let (pm, pp) = PAPER[row][col];
                    cols.push(format!(
                        "{:.1}%,{:.1}% (p:{pm},{pp})",
                        cell.median_diff_pct, cell.p95_diff_pct
                    ));
                }
                println!(
                    "  {:<11} {:>24} {:>24} {:>24}",
                    format!("{mbps} Mbit/s"),
                    cols[0],
                    cols[1],
                    cols[2]
                );
            }
            println!("\n  each cell: measured median%,p95% (p: paper values)");
            let mut metrics = Vec::new();
            for cell in &r.cells {
                let prefix = format!("{:.0}mbps_{}ms", cell.mbps, cell.delay_ms);
                metrics.push((format!("median_diff_pct_{prefix}"), cell.median_diff_pct));
                metrics.push((format!("p95_diff_pct_{prefix}"), cell.p95_diff_pct));
            }
            Some(metrics)
        },
    }
    .main()
}
