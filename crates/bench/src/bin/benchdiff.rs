//! `benchdiff` — guard the BENCH trajectory.
//!
//! ```text
//! benchdiff <baseline-dir> <candidate-dir> [--threshold <pct>]
//! ```
//!
//! Compares every `BENCH_*.json` in the baseline directory against the
//! same-named file in the candidate directory and exits nonzero on:
//!
//! - a baseline bench file with no candidate counterpart,
//! - a baseline metric key that disappeared from the candidate
//!   (renames must update the committed baseline in the same change),
//! - a paired-median regression: a `*_median_ms` key whose candidate
//!   value exceeds baseline by more than the threshold (default 25%),
//!   checked only when `seed` and `sites` match — medians from
//!   different scales are not comparable.
//!
//! New candidate keys and improvements are reported but never fail the
//! run; the gate is one-sided by design.

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

/// One parsed BENCH file: flat key → numeric value (null → NaN,
/// strings only for the `bench` name which we keep separately).
struct BenchFile {
    seed: Option<f64>,
    sites: Option<f64>,
    metrics: BTreeMap<String, f64>,
}

/// Parse the restricted JSON `write_bench_json` emits: one flat object,
/// string or numeric or null values, one `"key": value` pair per line.
fn parse_bench(text: &str) -> BenchFile {
    let mut metrics = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some(rest) = line.strip_prefix('"') else {
            continue;
        };
        let Some((key, value)) = rest.split_once("\":") else {
            continue;
        };
        let value = value.trim();
        let num = if value == "null" {
            f64::NAN
        } else if let Ok(v) = value.parse::<f64>() {
            v
        } else {
            continue; // string field (the bench name)
        };
        metrics.insert(key.to_string(), num);
    }
    BenchFile {
        seed: metrics.remove("seed"),
        sites: metrics.remove("sites"),
        metrics,
    }
}

fn load(path: &Path) -> Option<BenchFile> {
    std::fs::read_to_string(path).ok().map(|t| parse_bench(&t))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threshold: f64 = args
        .iter()
        .position(|a| a == "--threshold")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(25.0);
    let dirs: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let dirs: Vec<&String> = dirs
        .iter()
        .enumerate()
        .filter(|(i, _)| !matches!(args.iter().position(|a| a == "--threshold"), Some(p) if *i == p + 1))
        .map(|(_, a)| *a)
        .collect();
    let [baseline_dir, candidate_dir] = dirs.as_slice() else {
        eprintln!("usage: benchdiff <baseline-dir> <candidate-dir> [--threshold <pct>]");
        return ExitCode::from(2);
    };

    let mut names: Vec<String> = match std::fs::read_dir(baseline_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            eprintln!("cannot read baseline dir {baseline_dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("no BENCH_*.json baselines in {baseline_dir}");
        return ExitCode::FAILURE;
    }

    let mut failures = 0usize;
    for name in &names {
        // A listed file can still fail to read (permissions, races);
        // name it instead of panicking.
        let base_path = Path::new(baseline_dir).join(name);
        let Some(base) = load(&base_path) else {
            println!("FAIL {name}: cannot read baseline {}", base_path.display());
            failures += 1;
            continue;
        };
        let Some(cand) = load(&Path::new(candidate_dir).join(name)) else {
            println!("FAIL {name}: candidate file missing");
            failures += 1;
            continue;
        };
        let mut file_fail = false;
        for key in base.metrics.keys() {
            if !cand.metrics.contains_key(key) {
                println!("FAIL {name}: key {key:?} disappeared");
                file_fail = true;
            }
        }
        let comparable = base.seed == cand.seed && base.sites == cand.sites;
        if !comparable {
            println!(
                "skip {name}: medians not compared (seed/sites differ: \
                 baseline {:?}/{:?}, candidate {:?}/{:?})",
                base.seed, base.sites, cand.seed, cand.sites
            );
        } else {
            for (key, bval) in &base.metrics {
                if !key.ends_with("_median_ms") || !bval.is_finite() || *bval <= 0.0 {
                    continue;
                }
                let Some(cval) = cand.metrics.get(key).filter(|v| v.is_finite()) else {
                    continue;
                };
                let pct = (cval - bval) / bval * 100.0;
                if pct > threshold {
                    println!(
                        "FAIL {name}: {key} regressed {pct:+.1}% \
                         ({bval:.1} ms -> {cval:.1} ms, threshold {threshold}%)"
                    );
                    file_fail = true;
                } else if pct < -threshold {
                    println!(
                        "note {name}: {key} improved {pct:+.1}% \
                         ({bval:.1} ms -> {cval:.1} ms)"
                    );
                }
            }
        }
        if file_fail {
            failures += 1;
        } else {
            println!("ok   {name}");
        }
    }
    if failures > 0 {
        println!("benchdiff: {failures}/{} bench file(s) failed", names.len());
        ExitCode::FAILURE
    } else {
        println!("benchdiff: all {} bench file(s) within bounds", names.len());
        ExitCode::SUCCESS
    }
}
