//! Figure 3 / §4: CDF of page load time for an nytimes-like page loaded
//! on the "actual web" versus inside ReplayShell with and without
//! multi-origin preservation.
//!
//! Paper: multi-origin replay's median PLT is 7.9% above the web;
//! single-server replay's is 29.6% above.

use bench::cli::ExperimentSpec;
use bench::fig3;
use bench::report::{ms, paper_vs_measured, pct, plot_cdfs, summary_metrics};

fn main() {
    ExperimentSpec {
        name: "fig3",
        default_sites: 100,
        title: |n| format!("Figure 3 — multi-origin preservation vs the real web ({n} loads/arm)"),
        run: |loads, seed| {
            let mut r = fig3(loads, seed);
            println!("  actual web:             median {}", ms(r.web.median()));
            println!("  replay multi-origin:    median {}", ms(r.multi.median()));
            println!("  replay single-server:   median {}", ms(r.single.median()));
            println!();
            paper_vs_measured(
                "multi-origin replay vs web at median",
                "+7.9%",
                &pct(r.multi_gap_pct()),
            );
            paper_vs_measured(
                "single-server replay vs web at median",
                "+29.6%",
                &pct(r.single_gap_pct()),
            );
            println!();
            let mut metrics = Vec::new();
            metrics.push(("multi_gap_pct".to_string(), r.multi_gap_pct()));
            metrics.push(("single_gap_pct".to_string(), r.single_gap_pct()));
            let (mut w, mut m, mut s) = (r.web, r.multi, r.single);
            metrics.extend(summary_metrics("web", &mut w));
            metrics.extend(summary_metrics("multi", &mut m));
            metrics.extend(summary_metrics("single", &mut s));
            plot_cdfs(&mut [
                ("Actual Web", &mut w),
                ("Replay Multi-origin", &mut m),
                ("Replay Single Server", &mut s),
            ]);
            Some(metrics)
        },
    }
    .main()
}
