//! figsoak — the long-lived serving soak: one multi-origin replay
//! world serving open-loop Poisson session arrivals (one browser
//! session per second on average, 32-slot admission pool) over the
//! figshare bottleneck, for simulated hours.
//!
//! Reports throughput (requests/sec), session PLT tails, and the
//! leak-detector high-water marks: server connection-table occupancy,
//! client socket-pool occupancy, retransmission-queue and SACK
//! scoreboard sizes. The run panics if anything stays tabled after the
//! drain or occupancy exceeds the concurrency bound, so every
//! invocation doubles as a memory-bounds assertion.
//!
//! `figsoak <minutes>` soaks for that much simulated time (default
//! 30); `figsoak --smoke` runs the 2-minute CI configuration. Writes
//! `BENCH_figsoak.json` plus `METRICS_figsoak.prom`, the validated
//! Prometheus text snapshot of everything the world exported.

use bench::cli::ExperimentSpec;
use bench::{figsoak, FIGSHARE_DOWN_MBPS, FIGSHARE_UP_MBPS, FIGSOAK_MAX_LIVE};

fn main() {
    ExperimentSpec {
        name: "figsoak",
        default_sites: 30,
        title: |n| {
            format!(
                "figsoak — long-lived serving soak ({n} simulated minutes, \
                 {FIGSHARE_DOWN_MBPS}/{FIGSHARE_UP_MBPS} Mbit/s bottleneck, \
                 {FIGSOAK_MAX_LIVE}-slot pool)"
            )
        },
        run: |n, seed| {
            let smoke = std::env::args().any(|a| a == "--smoke" || a == "smoke");
            let minutes = if smoke { 2 } else { n };
            if smoke {
                println!("  (smoke configuration: {minutes} simulated minutes)");
            }
            // Smoke runs double as a conformance check: an online
            // auditor rides the TCP metrics stream and its violation
            // total lands in the Prometheus snapshot.
            let report = figsoak(minutes, seed, smoke);
            let r = &report.result;
            println!(
                "  sessions: {} started, {} completed, {} shed | {} resources, {} failures",
                r.sessions_started,
                r.sessions_completed,
                r.sessions_shed,
                r.resources_fetched,
                r.failures
            );
            println!(
                "  throughput: {:.1} requests/sec over {:.0} simulated seconds",
                r.requests_per_sec,
                r.completed_at.as_secs_f64()
            );
            println!(
                "  session PLT: p50 {:.0} ms, p95 {:.0} ms, p99 {:.0} ms",
                r.plt_p50_ms, r.plt_p95_ms, r.plt_p99_ms
            );
            println!(
                "  high-water marks: {} server conns (final {}), {} client sockets \
                 (final {})",
                r.server_conn_high_water,
                r.server_conns_final,
                r.client_socket_high_water,
                r.client_sockets_final
            );
            println!(
                "  socket internals: retx queue ≤ {} entries, SACK scoreboard ≤ {} ranges",
                r.max_retx_queue, r.max_scoreboard_ranges
            );
            println!("\n  per-origin breakdown ({} origins):", r.per_origin.len());
            println!(
                "    {:<22} {:>7} {:>5} {:>11} {:>9} {:>9} {:>9}",
                "origin", "reqs", "fail", "body bytes", "p50 ms", "p95 ms", "p99 ms"
            );
            let mut origins = r.per_origin.clone();
            origins.sort_by(|a, b| b.requests.cmp(&a.requests).then(a.origin.cmp(&b.origin)));
            for o in &origins {
                println!(
                    "    {:<22} {:>7} {:>5} {:>11} {:>9.1} {:>9.1} {:>9.1}",
                    o.origin,
                    o.requests,
                    o.failures,
                    o.body_bytes,
                    o.svc_p50_ms,
                    o.svc_p95_ms,
                    o.svc_p99_ms
                );
            }
            match std::fs::write("METRICS_figsoak.prom", &report.snapshot) {
                Ok(()) => println!(
                    "\n  wrote METRICS_figsoak.prom ({} series)",
                    report
                        .snapshot
                        .lines()
                        .filter(|l| !l.starts_with('#') && !l.is_empty())
                        .count()
                ),
                Err(e) => eprintln!("\n  could not write METRICS_figsoak.prom: {e}"),
            }
            Some(vec![
                ("sessions_started".into(), r.sessions_started as f64),
                ("sessions_completed".into(), r.sessions_completed as f64),
                ("sessions_shed".into(), r.sessions_shed as f64),
                ("resources_fetched".into(), r.resources_fetched as f64),
                ("failures".into(), r.failures as f64),
                ("requests_per_sec".into(), r.requests_per_sec),
                ("plt_p50_ms".into(), r.plt_p50_ms),
                ("plt_p95_ms".into(), r.plt_p95_ms),
                ("plt_p99_ms".into(), r.plt_p99_ms),
                (
                    "server_conn_high_water".into(),
                    r.server_conn_high_water as f64,
                ),
                (
                    "client_socket_high_water".into(),
                    r.client_socket_high_water as f64,
                ),
                ("max_retx_queue".into(), r.max_retx_queue as f64),
                (
                    "max_scoreboard_ranges".into(),
                    r.max_scoreboard_ranges as f64,
                ),
                ("completed_at_s".into(), r.completed_at.as_secs_f64()),
                ("origins".into(), r.per_origin.len() as f64),
            ])
        },
    }
    .main()
}
