//! figbbr — the buffer sweep for model-based congestion control: page
//! loads over the figcell cellular regimes × {DropTail-32, DropTail-256,
//! CoDel} × CC {NewReno, CUBIC, BBR} × the full recovery-tier ladder,
//! under the mux protocol, with figcell/figrack's exact traces, seeds
//! and per-site pairing.
//!
//! Two ROADMAP questions at once: how CUBIC (the era's Linux default,
//! previously unswept) interacts with the recovery tiers, and whether a
//! delivery-rate-model + pacing sender (BBR) beats loss-based CC in the
//! deep-buffer bufferbloat regime without giving up the AQM column.
//! The (Reno CC, racktlp) column over droptail32/CoDel reproduces
//! figrack's racktlp column cell-for-cell. Writes `BENCH_figbbr.json`.

use bench::cli::ExperimentSpec;
use bench::report::{cell_key, ms, summary_metrics};
use bench::{figbbr, FIGCELL_DELAY_MS};

fn main() {
    ExperimentSpec {
        name: "figbbr",
        default_sites: 24,
        title: |n| {
            format!(
                "figbbr — CC × recovery × buffer depth over cellular traces, mux protocol ({n} sites, {}ms RTT)",
                FIGCELL_DELAY_MS * 2
            )
        },
        run: |n_sites, seed| {
            let mut r = figbbr(n_sites, seed);
            println!(
                "  {:<15} {:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
                "regime", "qdisc", "reno", "cubic", "bbr", "bbr:reno%", "cub:reno%", "bbr:cub%"
            );
            println!("  (PLT medians at the racktlp tier; full CC × tier grid in the JSON)");
            let mut metrics: Vec<(String, f64)> = Vec::new();
            for cell in &mut r.cells {
                let prefix = cell_key(&cell.regime, &cell.qdisc);
                let racktlp_medians: Vec<f64> = ["reno", "cubic", "bbr"]
                    .iter()
                    .map(|cc| cell.arm_mut(cc, "racktlp").unwrap().median())
                    .collect();
                println!(
                    "  {:<15} {:<12} | {:>9} {:>9} {:>9} | {:>8.1}% {:>8.1}% {:>8.1}%",
                    cell.regime,
                    cell.qdisc,
                    ms(racktlp_medians[0]),
                    ms(racktlp_medians[1]),
                    ms(racktlp_medians[2]),
                    cell.bbr_vs_reno_pct.median(),
                    cell.cubic_vs_reno_pct.median(),
                    cell.bbr_vs_cubic_pct.median(),
                );
                for arm in &mut cell.arms {
                    metrics.extend(summary_metrics(
                        &format!("{}_{}_{prefix}", arm.cc, arm.tier),
                        &mut arm.plt,
                    ));
                }
                metrics.push((
                    format!("bbr_vs_reno_pct_{prefix}"),
                    cell.bbr_vs_reno_pct.median(),
                ));
                metrics.push((
                    format!("cubic_vs_reno_pct_{prefix}"),
                    cell.cubic_vs_reno_pct.median(),
                ));
                metrics.push((
                    format!("bbr_vs_cubic_pct_{prefix}"),
                    cell.bbr_vs_cubic_pct.median(),
                ));
            }
            println!();
            println!("  bbr:reno% = median per-site paired speedup of BBR (paced, model-based)");
            println!("              over Reno CC, recovery held at the racktlp tier; cub:reno%");
            println!("              and bbr:cub% are the same pairing for the other CC pairs.");
            println!("  Every site is loaded under all nine (cc, tier) arms with the same seed");
            println!("  and trace; droptail256 is the deep-buffer bufferbloat column.");
            Some(metrics)
        },
    }
    .main()
}
