//! figmux — the protocol-comparison experiment (the paper's §5 SPDY case
//! study, reproduced with mm-mux): PLT of HTTP/1.1 (6 connections per
//! origin) vs one multiplexed connection per origin, swept over link
//! rate × RTT over the corpus, under otherwise-identical emulated
//! conditions and seeds.
//!
//! The paper's qualitative result: multiplexing wins where round trips
//! dominate (high RTT, many small objects) and loses its edge where
//! bandwidth dominates. Writes `BENCH_figmux.json` with per-cell medians
//! and p95s for the perf trajectory.

use bench::cli::ExperimentSpec;
use bench::figmux;
use bench::report::{ms, summary_metrics};

fn main() {
    ExperimentSpec {
        name: "figmux",
        default_sites: 40,
        title: |n| {
            format!("figmux — HTTP/1.1 vs multiplexed transport across link rate × RTT ({n} sites)")
        },
        run: |n_sites, seed| {
            let mut r = figmux(n_sites, seed);
            println!(
                "  {:>8} {:>8} | {:>12} {:>12} | {:>7} {:>9}",
                "rate", "RTT", "http1 median", "mux median", "ratio", "paired"
            );
            let mut metrics: Vec<(String, f64)> = Vec::new();
            for cell in &mut r.cells {
                let ratio = cell.median_ratio();
                let speedup = cell.median_speedup_pct();
                println!(
                    "  {:>6.0}Mb {:>6}ms | {:>12} {:>12} | {:>7.2} {:>8.1}%",
                    cell.mbps,
                    cell.rtt_ms,
                    ms(cell.http1.median()),
                    ms(cell.mux.median()),
                    ratio,
                    speedup,
                );
                let prefix = format!("{:.0}mbps_{}ms", cell.mbps, cell.delay_ms);
                metrics.extend(summary_metrics(&format!("http1_{prefix}"), &mut cell.http1));
                metrics.extend(summary_metrics(&format!("mux_{prefix}"), &mut cell.mux));
                metrics.push((format!("ratio_{prefix}"), ratio));
                metrics.push((format!("paired_speedup_pct_{prefix}"), speedup));
            }
            println!();
            println!("  ratio  = http1 median / mux median over the per-site PLT distributions;");
            println!("  paired = median per-site speedup (each site loaded under both protocols");
            println!("  with the same seed; positive means mux is faster on the median site).");
            Some(metrics)
        },
    }
    .main()
}
