//! figshare — population-scale contention: N concurrent users (a page
//! load plus a bulk download each) through one shared delay+link
//! bottleneck, swept over qdisc {droptail32, droptail256, codel} × CC
//! mix {all-Reno, all-BBR, 50/50 BBR+Reno} × protocol {http1, mux}.
//!
//! Reports Jain's fairness index over per-user bulk goodputs, the
//! population's PLT p50/p95/p99, the BBR share of aggregate goodput
//! (the 50/50 coexistence measurement — recorded as measured, see
//! DESIGN.md §7), and the bottleneck queue's high-water mark.
//!
//! `figshare <n>` runs populations {2, 16, 64} up to `n` (plus `n`
//! itself, so `figshare 1024` adds a 1024-user arm); `figshare <n>
//! smoke` runs only `n` users on two cells (the CI configuration).
//! Writes `BENCH_figshare.json`.

use bench::cli::ExperimentSpec;
use bench::report::key_fragment;
use bench::{figshare, FIGCELL_DELAY_MS, FIGSHARE_BULK_BYTES};

fn main() {
    ExperimentSpec {
        name: "figshare",
        default_sites: 64,
        title: |n| {
            format!(
                "figshare — many-flow contention on one bottleneck (up to {n} users, \
                 {}ms RTT, {} KB bulk/user)",
                FIGCELL_DELAY_MS * 2,
                FIGSHARE_BULK_BYTES / 1000
            )
        },
        run: |n, seed| {
            let smoke = std::env::args().nth(2).is_some_and(|a| a == "smoke");
            if smoke {
                println!("  (smoke configuration: {n} users, 2 cells)");
            }
            let r = figshare(n, smoke, seed);
            println!(
                "  {:>5} {:<12} {:<9} {:<6} | {:>6} {:>9} {:>9} {:>9} | {:>7} {:>6}",
                "users", "qdisc", "mix", "proto", "jain", "p50", "p95", "p99", "bbr%", "maxq"
            );
            let mut metrics: Vec<(String, f64)> = Vec::new();
            for cell in &r.cells {
                println!(
                    "  {:>5} {:<12} {:<9} {:<6} | {:>6.3} {:>7.0}ms {:>7.0}ms {:>7.0}ms | {:>6.1}% {:>6}",
                    cell.n_users,
                    cell.qdisc,
                    cell.cc_mix,
                    cell.protocol,
                    cell.fairness,
                    cell.plt_p50_ms,
                    cell.plt_p95_ms,
                    cell.plt_p99_ms,
                    cell.bbr_share * 100.0,
                    cell.max_queue_packets,
                );
                let key = format!(
                    "{}u_{}_{}_{}",
                    cell.n_users,
                    key_fragment(&cell.qdisc),
                    cell.cc_mix,
                    cell.protocol
                );
                metrics.push((format!("jain_{key}"), cell.fairness));
                metrics.push((format!("plt_p50_ms_{key}"), cell.plt_p50_ms));
                metrics.push((format!("plt_p95_ms_{key}"), cell.plt_p95_ms));
                metrics.push((format!("plt_p99_ms_{key}"), cell.plt_p99_ms));
                metrics.push((format!("bbr_share_{key}"), cell.bbr_share));
                metrics.push((format!("max_queue_pkts_{key}"), cell.max_queue_packets as f64));
            }
            println!();
            println!("  jain = Jain's fairness index over per-user bulk goodputs; bbr% = share");
            println!("  of aggregate bulk goodput on BBR senders (0% all-Reno, 100% all-BBR);");
            println!("  maxq = bottleneck downlink queue high-water mark in packets. Every");
            println!("  cell reuses the same site, arrivals and seeds (per-user pairing).");
            Some(metrics)
        },
    }
    .main()
}
