//! figrack — the loss-recovery-tier sweep: page loads over the figcell
//! cellular regimes × loss-producing queue disciplines (DropTail-32,
//! CoDel), under the mux protocol, with `TcpConfig::recovery` as the
//! swept axis: NewReno vs SACK vs RACK-TLP + F-RTO — plus a CUBIC-CC
//! arm at the RackTlp tier, so CUBIC's spurious-timeout undo path runs
//! in an experiment and not just unit tests.
//!
//! The question figrack answers: figcell left the CoDel column mixed —
//! under AQM, SACK's recovery speed buys little and the unrecoverable
//! RTO backoff can make multiplexed chains slower. Does time-based loss
//! detection (tail loss probes instead of RTOs, spurious-timeout undo)
//! flip those cells non-negative? Writes `BENCH_figrack.json`.

use bench::cli::ExperimentSpec;
use bench::report::{cell_key, ms, summary_metrics};
use bench::{figrack, FIGCELL_DELAY_MS};

fn main() {
    ExperimentSpec {
        name: "figrack",
        default_sites: 24,
        title: |n| {
            format!(
                "figrack — recovery tier × qdisc over cellular traces, mux protocol ({n} sites, {}ms RTT)",
                FIGCELL_DELAY_MS * 2
            )
        },
        run: |n_sites, seed| {
            let mut r = figrack(n_sites, seed);
            println!(
                "  {:<15} {:<12} | {:>10} {:>10} {:>10} {:>10} | {:>8} {:>8} {:>8} {:>8}",
                "regime",
                "qdisc",
                "reno",
                "sack",
                "racktlp",
                "cubic",
                "sack%",
                "rack%",
                "rack:sack%",
                "cubic%"
            );
            let mut metrics: Vec<(String, f64)> = Vec::new();
            for cell in &mut r.cells {
                println!(
                    "  {:<15} {:<12} | {:>10} {:>10} {:>10} {:>10} | {:>7.1}% {:>7.1}% {:>9.1}% {:>7.1}%",
                    cell.regime,
                    cell.qdisc,
                    ms(cell.reno.median()),
                    ms(cell.sack.median()),
                    ms(cell.racktlp.median()),
                    ms(cell.cubic_racktlp.median()),
                    cell.sack_speedup_pct.median(),
                    cell.racktlp_speedup_pct.median(),
                    cell.racktlp_vs_sack_pct.median(),
                    cell.cubic_vs_reno_cc_pct.median(),
                );
                let prefix = cell_key(&cell.regime, &cell.qdisc);
                metrics.extend(summary_metrics(&format!("reno_{prefix}"), &mut cell.reno));
                metrics.extend(summary_metrics(&format!("sack_{prefix}"), &mut cell.sack));
                metrics.extend(summary_metrics(
                    &format!("racktlp_{prefix}"),
                    &mut cell.racktlp,
                ));
                metrics.push((
                    format!("sack_speedup_pct_{prefix}"),
                    cell.sack_speedup_pct.median(),
                ));
                metrics.push((
                    format!("racktlp_speedup_pct_{prefix}"),
                    cell.racktlp_speedup_pct.median(),
                ));
                metrics.push((
                    format!("racktlp_vs_sack_pct_{prefix}"),
                    cell.racktlp_vs_sack_pct.median(),
                ));
                // The CUBIC-CC arm rides after the PR 4 metrics so the
                // pre-existing keys keep their values and relative order.
                metrics.extend(summary_metrics(
                    &format!("cubic_racktlp_{prefix}"),
                    &mut cell.cubic_racktlp,
                ));
                metrics.push((
                    format!("cubic_vs_reno_cc_pct_{prefix}"),
                    cell.cubic_vs_reno_cc_pct.median(),
                ));
            }
            println!();
            println!("  sack%      = median per-site paired speedup of SACK over NewReno (figcell's");
            println!("               mux:sack%, reproduced cell-for-cell as the baseline);");
            println!("  rack%      = the same pairing for RACK-TLP + F-RTO over NewReno;");
            println!("  rack:sack% = RACK-TLP over SACK (positive = the time-based machinery pays);");
            println!("  cubic      = CUBIC congestion control at the RackTlp tier (other columns");
            println!("               run Reno CC); cubic% pairs it against reno-CC racktlp;");
            println!("  every site is loaded under all four arms with the same seed and trace.");
            Some(metrics)
        },
    }
    .main()
}
