//! Shared terminal reporting for the experiment binaries: paper-vs-measured
//! tables, ASCII CDF plots, and machine-readable `BENCH_<name>.json`
//! result files for tracking the perf trajectory across commits.

use mm_sim::stats::ascii_cdf_plot;
use mm_sim::Summary;

/// Print a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

/// Print a paper-vs-measured row.
pub fn paper_vs_measured(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:<14} measured: {measured}");
}

/// Print CDF curves for several summaries.
pub fn plot_cdfs(series: &mut [(&str, &mut Summary)]) {
    let curves: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter_mut()
        .map(|(name, s)| (*name, s.cdf(40)))
        .collect();
    println!("{}", ascii_cdf_plot(&curves, 64, 16));
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    format!("{v:.0} ms")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Write `BENCH_<name>.json` to the current directory: run metadata plus
/// a flat map of metric name → value, so CI can archive every run and the
/// perf trajectory accumulates in a machine-readable form. Metric names
/// are code-controlled identifiers (no escaping needed); non-finite
/// values serialize as `null`. Returns the path written.
pub fn write_bench_json(
    name: &str,
    seed: u64,
    sites: usize,
    metrics: &[(String, f64)],
) -> std::io::Result<std::path::PathBuf> {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"{name}\",\n  \"seed\": {seed},\n  \"sites\": {sites}"
    ));
    for (key, value) in metrics {
        debug_assert!(
            key.chars()
                .all(|c| c.is_ascii_alphanumeric() || "_.-".contains(c)),
            "metric keys must not need JSON escaping: {key:?}"
        );
        if value.is_finite() {
            out.push_str(&format!(",\n  \"{key}\": {value:.3}"));
        } else {
            out.push_str(&format!(",\n  \"{key}\": null"));
        }
    }
    out.push_str("\n}\n");
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, out)?;
    Ok(path)
}

/// A JSON-safe metric-key fragment: sweep axis labels use '-' for
/// readability ("lte-good", "droptail-32"), metric keys use '_'.
pub fn key_fragment(label: &str) -> String {
    label.replace('-', "_")
}

/// The `<regime>_<qdisc>` metric-key suffix every cellular sweep
/// (figcell/figrack/figbbr) names its cells by.
pub fn cell_key(regime: &str, qdisc: &str) -> String {
    format!("{}_{}", key_fragment(regime), key_fragment(qdisc))
}

/// Metric rows for one PLT summary: `<prefix>_median_ms` and
/// `<prefix>_p95_ms`.
pub fn summary_metrics(prefix: &str, s: &mut Summary) -> Vec<(String, f64)> {
    vec![
        (format!("{prefix}_median_ms"), s.median()),
        (format!("{prefix}_p95_ms"), s.percentile(95.0)),
    ]
}
