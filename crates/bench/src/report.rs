//! Shared terminal reporting for the experiment binaries: paper-vs-measured
//! tables and ASCII CDF plots.

use mm_sim::stats::ascii_cdf_plot;
use mm_sim::Summary;

/// Print a section header.
pub fn header(title: &str) {
    println!("\n{}", "=".repeat(74));
    println!("{title}");
    println!("{}", "=".repeat(74));
}

/// Print a paper-vs-measured row.
pub fn paper_vs_measured(label: &str, paper: &str, measured: &str) {
    println!("  {label:<44} paper: {paper:<14} measured: {measured}");
}

/// Print CDF curves for several summaries.
pub fn plot_cdfs(series: &mut [(&str, &mut Summary)]) {
    let curves: Vec<(&str, Vec<(f64, f64)>)> = series
        .iter_mut()
        .map(|(name, s)| (*name, s.cdf(40)))
        .collect();
    println!("{}", ascii_cdf_plot(&curves, 64, 16));
}

/// Format milliseconds compactly.
pub fn ms(v: f64) -> String {
    format!("{v:.0} ms")
}

/// Format a percentage.
pub fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}
