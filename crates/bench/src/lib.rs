//! Experiment implementations reproducing every table and figure in the
//! paper's evaluation. Each experiment is a plain function so the same
//! code runs from the `fig2`/`table1`/`table2`/`fig3`/`corpus_stats`
//! binaries, from criterion benches, and (in reduced form) from the smoke
//! tests in `tests/`.

pub mod cli;
pub mod experiments;
pub mod parallel;
pub mod report;

pub use experiments::*;
pub use parallel::parallel_map;
