//! The shared experiment runner: every `bench/src/bin/*` binary is the
//! same six lines of arg parsing, header printing and JSON writing
//! around a different experiment body. [`ExperimentSpec`] owns that
//! boilerplate so a new experiment binary is just a spec literal.

use crate::report::{header, write_bench_json};

/// The corpus-wide experiment seed (the paper's publication year).
pub const DEFAULT_SEED: u64 = 2014;

/// Flat `(key, value)` metrics an experiment body hands back for the
/// BENCH JSON file.
pub type Metrics = Vec<(String, f64)>;

/// One experiment binary: name, default scale, and the body.
pub struct ExperimentSpec {
    /// Bench name — also the `BENCH_<name>.json` stem.
    pub name: &'static str,
    /// Default for the first CLI argument (sites or loads per arm).
    pub default_sites: usize,
    /// Section-header title for the parsed scale.
    pub title: fn(n: usize) -> String,
    /// Run the experiment at `(n, seed)`: print the human-readable
    /// tables, return the flat JSON metrics — or `None` for experiments
    /// that do not write a BENCH file (corpus_stats).
    pub run: fn(n: usize, seed: u64) -> Option<Metrics>,
}

impl ExperimentSpec {
    /// Parse `argv[1]` (falling back to `default_sites`), print the
    /// header, run the body, and write `BENCH_<name>.json` if the body
    /// returned metrics. Binaries call this from `main`.
    pub fn main(&self) {
        let n = std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.default_sites);
        header(&(self.title)(n));
        if let Some(metrics) = (self.run)(n, DEFAULT_SEED) {
            match write_bench_json(self.name, DEFAULT_SEED, n, &metrics) {
                Ok(path) => println!("\n  wrote {}", path.display()),
                Err(e) => eprintln!("\n  could not write BENCH_{}.json: {e}", self.name),
            }
        }
    }
}
