//! The shared experiment runner: every `bench/src/bin/*` binary is the
//! same six lines of arg parsing, header printing and JSON writing
//! around a different experiment body. [`ExperimentSpec`] owns that
//! boilerplate so a new experiment binary is just a spec literal.

use crate::report::{header, write_bench_json};

/// The corpus-wide experiment seed (the paper's publication year).
pub const DEFAULT_SEED: u64 = 2014;

/// Flat `(key, value)` metrics an experiment body hands back for the
/// BENCH JSON file.
pub type Metrics = Vec<(String, f64)>;

/// One experiment binary: name, default scale, and the body.
pub struct ExperimentSpec {
    /// Bench name — also the `BENCH_<name>.json` stem.
    pub name: &'static str,
    /// Default for the first CLI argument (sites or loads per arm).
    pub default_sites: usize,
    /// Section-header title for the parsed scale.
    pub title: fn(n: usize) -> String,
    /// Run the experiment at `(n, seed)`: print the human-readable
    /// tables, return the flat JSON metrics — or `None` for experiments
    /// that do not write a BENCH file (corpus_stats).
    pub run: fn(n: usize, seed: u64) -> Option<Metrics>,
}

impl ExperimentSpec {
    /// Parse `argv[1]` (falling back to `default_sites`), print the
    /// header, run the body, and write `BENCH_<name>.json` if the body
    /// returned metrics. Binaries call this from `main`.
    ///
    /// Every binary also accepts `--trace-out <path>` (after any
    /// positional arguments): it turns on the harness's process-global
    /// flow tracing, so every page load records per-flow TCP samples
    /// (cwnd, srtt, in-flight, delivered, state transitions), and the
    /// accumulated JSONL is written to `<path>` after the run. Tracing
    /// only observes — the BENCH output is unchanged.
    ///
    /// Likewise `--capture-out <dir>` turns on the process-global packet
    /// tap for the first [`mahimahi::obs::DEFAULT_CAPTURE_LOADS`] page
    /// loads (per-packet enqueue/dequeue/drop/deliver at every shell,
    /// plus request/response events at the browser and replay
    /// boundaries) and writes `<dir>/capture.jsonl` after the run —
    /// render it with `mmgraph <dir>`. Taps only observe — the BENCH
    /// output is byte-identical with capture on or off.
    ///
    /// And `--span-out <dir>` turns on the process-global causal-span
    /// channel for the first [`mahimahi::obs::DEFAULT_SPAN_LOADS`] page
    /// loads (page/resource/phase spans from the browser, `ServerThink`
    /// from the replay servers, `ConnSetup`/`HolWait`/`Conn` from the
    /// TCP layer) and writes `<dir>/spans.jsonl` after the run —
    /// analyze it with `mmpath <dir>/spans.jsonl`. Sinks only observe —
    /// the BENCH output is byte-identical with spans on or off.
    ///
    /// Finally `--audit` (optionally with `--audit-out <dir>`) turns on
    /// the process-global conformance auditor for every page load:
    /// packet-conservation ledgers, TCP invariants and HTTP/span
    /// consistency are checked online, and the per-load reports plus
    /// order-insensitive equivalence digests are written to
    /// `<dir>/audit.jsonl` (default `.`) after the run — render or gate
    /// with `mmaudit <dir>`, compare runs with `mmaudit --compare`.
    /// Auditors only observe — the BENCH output is byte-identical with
    /// auditing on or off.
    pub fn main(&self) {
        let args: Vec<String> = std::env::args().collect();
        let trace_out = args.iter().position(|a| a == "--trace-out").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path argument");
                    std::process::exit(2);
                })
                .clone()
        });
        if trace_out.is_some() {
            mahimahi::obs::enable_trace();
        }
        let capture_out = args.iter().position(|a| a == "--capture-out").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("--capture-out requires a directory argument");
                    std::process::exit(2);
                })
                .clone()
        });
        if capture_out.is_some() {
            mahimahi::obs::enable_capture(mahimahi::obs::DEFAULT_CAPTURE_LOADS);
        }
        let span_out = args.iter().position(|a| a == "--span-out").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("--span-out requires a directory argument");
                    std::process::exit(2);
                })
                .clone()
        });
        if span_out.is_some() {
            mahimahi::obs::enable_spans(mahimahi::obs::DEFAULT_SPAN_LOADS);
        }
        let audit_out = args.iter().position(|a| a == "--audit-out").map(|i| {
            args.get(i + 1)
                .filter(|p| !p.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("--audit-out requires a directory argument");
                    std::process::exit(2);
                })
                .clone()
        });
        let audit = audit_out.is_some() || args.iter().any(|a| a == "--audit");
        let audit_out = audit.then(|| audit_out.unwrap_or_else(|| ".".to_string()));
        if audit {
            mahimahi::obs::enable_audit();
        }
        let n = args
            .get(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(self.default_sites);
        header(&(self.title)(n));
        let metrics = (self.run)(n, DEFAULT_SEED);
        if let Some(path) = &trace_out {
            let jsonl = mahimahi::obs::take_trace_jsonl();
            match std::fs::write(path, &jsonl) {
                Ok(()) => println!(
                    "\n  wrote {} ({} flow samples)",
                    path,
                    jsonl.lines().count()
                ),
                Err(e) => eprintln!("\n  could not write trace {path}: {e}"),
            }
        }
        if let Some(dir) = &capture_out {
            let jsonl = mahimahi::obs::take_capture_jsonl();
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                let path = std::path::Path::new(dir).join("capture.jsonl");
                std::fs::write(&path, &jsonl).map(|()| path)
            });
            match write {
                Ok(path) => println!(
                    "\n  wrote {} ({} capture events)",
                    path.display(),
                    jsonl.lines().count()
                ),
                Err(e) => eprintln!("\n  could not write capture into {dir}: {e}"),
            }
        }
        if let Some(dir) = &span_out {
            let jsonl = mahimahi::obs::take_span_jsonl();
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                let path = std::path::Path::new(dir).join("spans.jsonl");
                std::fs::write(&path, &jsonl).map(|()| path)
            });
            match write {
                Ok(path) => println!(
                    "\n  wrote {} ({} spans)",
                    path.display(),
                    jsonl.lines().count()
                ),
                Err(e) => eprintln!("\n  could not write spans into {dir}: {e}"),
            }
        }
        if let Some(dir) = &audit_out {
            let jsonl = mahimahi::obs::take_audit_jsonl();
            let violations = jsonl
                .lines()
                .filter(|l| l.contains("\"ev\":\"violation\""))
                .count();
            let write = std::fs::create_dir_all(dir).and_then(|()| {
                let path = std::path::Path::new(dir).join("audit.jsonl");
                std::fs::write(&path, &jsonl).map(|()| path)
            });
            match write {
                Ok(path) => println!(
                    "\n  wrote {} ({violations} violation{})",
                    path.display(),
                    if violations == 1 { "" } else { "s" }
                ),
                Err(e) => eprintln!("\n  could not write audit report into {dir}: {e}"),
            }
        }
        if let Some(metrics) = metrics {
            match write_bench_json(self.name, DEFAULT_SEED, n, &metrics) {
                Ok(path) => println!("\n  wrote {}", path.display()),
                Err(e) => eprintln!("\n  could not write BENCH_{}.json: {e}", self.name),
            }
        }
    }
}
