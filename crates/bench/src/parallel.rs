//! Thread-sharding for multi-site experiment loops.
//!
//! Each `Simulator` world is single-threaded by design (actor state in
//! `Rc<RefCell<_>>`), so parallelism lives one level up: independent page
//! loads — different sites, different seeds — run on different OS threads.
//! Because every load derives its seed from its *index*, not from
//! execution order, a sharded run produces bit-identical per-site results
//! to the serial loop, and [`parallel_map`] returns them in input order so
//! downstream summaries are byte-identical too.

/// Apply `f` to every item, sharded across the machine's cores, returning
/// results in input order. `f` receives `(index, &item)` — seed anything
/// stochastic from `index` so sharding cannot change results.
///
/// Setting `MM_BENCH_SERIAL=1` forces the plain serial loop, the
/// reference point for CI's serial-vs-sharded equivalence gate
/// (`mmaudit --compare`).
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let serial = std::env::var("MM_BENCH_SERIAL").is_ok_and(|v| v == "1");
    let threads = if serial {
        1
    } else {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(n.max(1))
    };
    if threads <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let f = &f;
                scope.spawn(move || {
                    items
                        .iter()
                        .enumerate()
                        .skip(tid)
                        .step_by(threads)
                        .map(|(i, item)| (i, f(i, item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("experiment shard panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..101).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3
        });
        assert_eq!(out, (0..101).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn serial_env_forces_one_thread() {
        // Safe enough in-process: parallel_map reads the var per call,
        // and the assertion holds under any interleaving with other
        // tests (results are order-preserving either way).
        std::env::set_var("MM_BENCH_SERIAL", "1");
        let items: Vec<u64> = (0..32).collect();
        let out = parallel_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x + 1
        });
        std::env::remove_var("MM_BENCH_SERIAL");
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let none: Vec<u32> = Vec::new();
        assert!(parallel_map(&none, |_, &x| x).is_empty());
        assert_eq!(parallel_map(&[7u32], |_, &x| x + 1), vec![8]);
    }
}
