//! DelayShell: a link with a fixed minimum one-way delay.
//!
//! From the paper: "All packets to and from an application running inside
//! DelayShell are stored in a packet queue. A separate queue is maintained
//! for packets traversing the link in each direction. Each packet is
//! released from the queue after the user-specified one-way delay."
//!
//! [`DelayLink`] is one direction; [`delay_shell`] builds the two-direction
//! namespace wrapper.

use std::cell::RefCell;
use std::rc::Rc;

use mm_capture::{PacketEvent, PacketEventKind, TapHandle, TapPoint};
use mm_net::{Namespace, Packet, PacketSink, SinkRef};
use mm_sim::{SimDuration, Simulator};

/// One direction of a DelayShell: releases each packet `delay` after it
/// arrives, preserving order (same delay + FIFO event tie-breaking).
pub struct DelayLink {
    delay: SimDuration,
    /// Fixed per-packet processing overhead, modelling the cost of the
    /// shell's forwarding process (mahimahi forwards through a user-space
    /// process; this is what Figure 2 measures).
    overhead: SimDuration,
    next: SinkRef,
    stats: RefCell<DelayStats>,
    /// Per-packet observability hook ([`DelayLink::set_tap`]); `None`
    /// (the default) costs one branch per packet.
    tap: RefCell<Option<(TapHandle, TapPoint)>>,
}

/// Counters for one delay-link direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct DelayStats {
    pub forwarded: u64,
    pub bytes: u64,
}

impl DelayLink {
    /// Delay direction with the default forwarding overhead (5 µs/packet).
    pub fn new(delay: SimDuration, next: SinkRef) -> Rc<Self> {
        DelayLink::with_overhead(delay, DEFAULT_SHELL_OVERHEAD, next)
    }

    /// Delay direction with explicit forwarding overhead.
    pub fn with_overhead(delay: SimDuration, overhead: SimDuration, next: SinkRef) -> Rc<Self> {
        Rc::new(DelayLink {
            delay,
            overhead,
            next,
            stats: RefCell::new(DelayStats::default()),
            tap: RefCell::new(None),
        })
    }

    /// Attach a per-packet tap: every packet reports a
    /// [`PacketEventKind::Deliver`] event at the moment it exits the
    /// delay leg toward the next hop. Taps observe only.
    pub fn set_tap(&self, tap: TapHandle, point: TapPoint) {
        *self.tap.borrow_mut() = Some((tap, point));
    }

    /// Counters snapshot.
    pub fn stats(&self) -> DelayStats {
        *self.stats.borrow()
    }
}

/// Per-packet cost of traversing a shell's forwarding process (the real
/// mm-delay forwards every packet through a user-space process over raw
/// sockets — tens of microseconds on 2014 hardware). Calibrated so
/// DelayShell-0ms imposes a fraction of a percent on median page load
/// time, as Figure 2 reports.
pub const DEFAULT_SHELL_OVERHEAD: SimDuration = SimDuration::from_micros(20);

impl PacketSink for DelayLink {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        {
            let mut s = self.stats.borrow_mut();
            s.forwarded += 1;
            s.bytes += pkt.wire_size() as u64;
        }
        let next = self.next.clone();
        let total = self.delay + self.overhead;
        let tap = self.tap.borrow().clone();
        if total.is_zero() {
            if let Some((tap, point)) = &tap {
                Self::tap_deliver(tap, *point, sim.now(), &pkt);
            }
            next.deliver(sim, pkt);
        } else {
            sim.schedule_in_tagged("sim_events_delay_total", total, move |sim| {
                if let Some((tap, point)) = &tap {
                    DelayLink::tap_deliver(tap, *point, sim.now(), &pkt);
                }
                next.deliver(sim, pkt);
            });
        }
    }
}

impl DelayLink {
    fn tap_deliver(tap: &TapHandle, point: TapPoint, now: mm_sim::Timestamp, pkt: &Packet) {
        tap.on_packet(&PacketEvent {
            t_ns: now.as_nanos(),
            kind: PacketEventKind::Deliver,
            point,
            pkt_id: pkt.id,
            size_bytes: pkt.wire_size() as u32,
            sojourn_ns: 0,
            flow: pkt.flow_key(),
        });
    }
}

/// Handle to a constructed delay shell: the inner namespace plus both
/// direction links for stats.
pub struct DelayShell {
    /// The namespace applications run inside.
    pub inner_ns: Namespace,
    /// Child → parent direction.
    pub uplink: Rc<DelayLink>,
    /// Parent → child direction.
    pub downlink: Rc<DelayLink>,
}

/// Build a DelayShell: creates a child namespace of `parent` whose traffic
/// in each direction is delayed by `delay` (the paper's `mm-delay <ms>`).
pub fn delay_shell(parent: &Namespace, name: &str, delay: SimDuration) -> DelayShell {
    delay_shell_with_overhead(parent, name, delay, DEFAULT_SHELL_OVERHEAD)
}

/// [`delay_shell`] with an explicit per-packet forwarding overhead
/// (0 to model an ideal shell).
pub fn delay_shell_with_overhead(
    parent: &Namespace,
    name: &str,
    delay: SimDuration,
    overhead: SimDuration,
) -> DelayShell {
    let inner_ns = Namespace::root(name);
    let uplink = DelayLink::with_overhead(delay, overhead, parent.router());
    let downlink = DelayLink::with_overhead(delay, overhead, inner_ns.router());
    parent.attach_child(&inner_ns, uplink.clone(), downlink.clone());
    DelayShell {
        inner_ns,
        uplink,
        downlink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_net::{FnSink, IpAddr, SocketAddr, TcpFlags, TcpSegment};
    use mm_sim::Timestamp;

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::new(),
            },
            corrupted: false,
        }
    }

    #[test]
    fn packets_delayed_exactly() {
        let mut sim = Simulator::new();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let a = arrivals.clone();
        let sink = FnSink::new(move |sim: &mut Simulator, p: Packet| {
            a.borrow_mut().push((p.id, sim.now()));
        });
        let link = DelayLink::with_overhead(SimDuration::from_millis(30), SimDuration::ZERO, sink);
        let l = link.clone();
        sim.schedule_at(Timestamp::from_millis(5), move |sim| l.deliver(sim, pkt(1)));
        sim.run();
        assert_eq!(*arrivals.borrow(), vec![(1, Timestamp::from_millis(35))]);
        assert_eq!(link.stats().forwarded, 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sim = Simulator::new();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let a = arrivals.clone();
        let sink = FnSink::new(move |_: &mut Simulator, p: Packet| a.borrow_mut().push(p.id));
        let link = DelayLink::new(SimDuration::from_millis(10), sink);
        let l = link.clone();
        sim.schedule_now(move |sim| {
            for i in 0..10 {
                l.deliver(sim, pkt(i));
            }
        });
        sim.run();
        assert_eq!(*arrivals.borrow(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_delay_zero_overhead_is_synchronous() {
        let mut sim = Simulator::new();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        let sink = FnSink::new(move |_: &mut Simulator, _| *c.borrow_mut() += 1);
        let link = DelayLink::with_overhead(SimDuration::ZERO, SimDuration::ZERO, sink);
        link.deliver(&mut sim, pkt(0));
        assert_eq!(*count.borrow(), 1, "no event round-trip needed");
    }

    #[test]
    fn shell_wires_both_directions() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let shell = delay_shell_with_overhead(
            &parent,
            "delayed",
            SimDuration::from_millis(25),
            SimDuration::ZERO,
        );
        // A host in the parent and one inside the shell.
        let outer_arrivals = Rc::new(RefCell::new(Vec::new()));
        let oa = outer_arrivals.clone();
        parent.add_host(
            IpAddr::new(8, 8, 8, 8),
            FnSink::new(move |sim: &mut Simulator, _| oa.borrow_mut().push(sim.now())),
        );
        let inner_arrivals = Rc::new(RefCell::new(Vec::new()));
        let ia = inner_arrivals.clone();
        shell.inner_ns.add_host(
            IpAddr::new(100, 64, 0, 2),
            FnSink::new(move |sim: &mut Simulator, _| ia.borrow_mut().push(sim.now())),
        );

        // Inner → outer takes 25 ms.
        let mut p = pkt(1);
        p.dst = SocketAddr::new(IpAddr::new(8, 8, 8, 8), 80);
        shell.inner_ns.router().deliver(&mut sim, p);
        // Outer → inner takes 25 ms.
        let mut q = pkt(2);
        q.dst = SocketAddr::new(IpAddr::new(100, 64, 0, 2), 80);
        parent.router().deliver(&mut sim, q);
        sim.run();
        assert_eq!(*outer_arrivals.borrow(), vec![Timestamp::from_millis(25)]);
        assert_eq!(*inner_arrivals.borrow(), vec![Timestamp::from_millis(25)]);
        assert_eq!(shell.uplink.stats().forwarded, 1);
        assert_eq!(shell.downlink.stats().forwarded, 1);
    }
}
