//! # mm-shells — composable network-emulation shells
//!
//! The Rust rendering of Mahimahi's emulation shells: [`delay`] (DelayShell,
//! fixed one-way delay), [`link`] (LinkShell, trace-driven delivery
//! opportunities with pluggable [`queue`] disciplines), [`loss`] (LossShell,
//! i.i.d. loss) and [`compose`] (nesting, like nesting mahimahi processes).

pub mod compose;
pub mod delay;
pub mod link;
pub mod loss;
pub mod queue;
pub mod tap;

pub use compose::{ShellLayer, ShellStack};
pub use delay::{
    delay_shell, delay_shell_with_overhead, DelayLink, DelayShell, DEFAULT_SHELL_OVERHEAD,
};
pub use link::{
    link_shell, LinkShell, LinkShellConfig, LinkStats, OpportunityPolicy, TraceLink, TraceLinkSink,
};
pub use loss::{loss_shell, LossLink, LossShell, LossStats};
pub use queue::{
    factories, CoDel, DropHead, DropTail, EnqueueResult, InstrumentedQdisc, Pie, Qdisc,
    QdiscFactory, QdiscStats, QueueLimit,
};
pub use tap::TappedQdisc;
