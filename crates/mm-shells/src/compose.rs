//! Shell composition: build nested shell stacks the way mahimahi nests
//! processes, e.g. `mm-delay 30 mm-link up.trace down.trace mm-loss uplink 0.01`.
//!
//! [`ShellStack`] is a builder: each call wraps a further shell *inside*
//! the previous one and returns the stack; `innermost()` yields the
//! namespace applications (the browser) run in.

use mm_capture::{Dir, PointKind, TapHandle, TapPoint};
use mm_net::Namespace;
use mm_sim::{RngStream, SimDuration};
use mm_trace::Trace;

use crate::delay::{delay_shell_with_overhead, DelayShell, DEFAULT_SHELL_OVERHEAD};
use crate::link::{link_shell, LinkShell, LinkShellConfig, OpportunityPolicy};
use crate::loss::{loss_shell, LossShell};
use crate::queue::Qdisc;

/// A layer in a built stack, exposing per-shell stats handles.
pub enum ShellLayer {
    Delay(DelayShell),
    Link(LinkShell),
    Loss(LossShell),
}

impl ShellLayer {
    /// The namespace inside this layer.
    pub fn inner_ns(&self) -> &Namespace {
        match self {
            ShellLayer::Delay(s) => &s.inner_ns,
            ShellLayer::Link(s) => &s.inner_ns,
            ShellLayer::Loss(s) => &s.inner_ns,
        }
    }
}

/// Builder for nested shells.
pub struct ShellStack {
    layers: Vec<ShellLayer>,
    current: Namespace,
    /// Per-packet forwarding overhead applied by delay shells.
    overhead: SimDuration,
    counter: usize,
    /// Per-packet tap attached to subsequently added shells.
    tap: Option<TapHandle>,
    /// Metrics sink wired into subsequently added links' qdiscs.
    qdisc_metrics: Option<mm_metrics::MetricsHandle>,
}

impl ShellStack {
    /// Start a stack rooted at `outer` (where replay servers live).
    pub fn new(outer: &Namespace) -> Self {
        ShellStack {
            layers: Vec::new(),
            current: outer.clone(),
            overhead: DEFAULT_SHELL_OVERHEAD,
            counter: 0,
            tap: None,
            qdisc_metrics: None,
        }
    }

    /// Override the per-packet forwarding overhead for subsequently added
    /// delay shells (0 models an ideal shell).
    pub fn with_shell_overhead(mut self, overhead: SimDuration) -> Self {
        self.overhead = overhead;
        self
    }

    /// Attach a per-packet tap to every shell added *after* this call
    /// (so call it first). Each direction of each layer reports under a
    /// [`TapPoint`] whose index matches the layer's namespace suffix
    /// (`link-2` ⇒ index 2). Taps observe only: a stack built with a
    /// tap produces the byte-identical simulation of one built without.
    pub fn with_tap(mut self, tap: TapHandle) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Wrap the qdisc of every link added *after* this call in an
    /// [`crate::queue::InstrumentedQdisc`] reporting into `sink` (the
    /// `qdisc_up_*`/`qdisc_down_*` metric families). Like taps,
    /// instrumentation observes only.
    pub fn with_qdisc_metrics(mut self, sink: mm_metrics::MetricsHandle) -> Self {
        self.qdisc_metrics = Some(sink);
        self
    }

    fn point(&self, kind: PointKind, dir: Dir) -> TapPoint {
        TapPoint {
            kind,
            index: self.counter as u32,
            dir,
        }
    }

    fn next_name(&mut self, kind: &str) -> String {
        self.counter += 1;
        format!("{kind}-{}", self.counter)
    }

    /// Nest a DelayShell (fixed one-way delay each direction).
    pub fn delay(mut self, delay: SimDuration) -> Self {
        let name = self.next_name("delay");
        let shell = delay_shell_with_overhead(&self.current, &name, delay, self.overhead);
        if let Some(tap) = &self.tap {
            shell
                .uplink
                .set_tap(tap.clone(), self.point(PointKind::Delay, Dir::Up));
            shell
                .downlink
                .set_tap(tap.clone(), self.point(PointKind::Delay, Dir::Down));
        }
        self.current = shell.inner_ns.clone();
        self.layers.push(ShellLayer::Delay(shell));
        self
    }

    /// Nest a LinkShell with a symmetric trace and the given qdisc factory.
    pub fn link(self, trace: Trace, make_qdisc: &dyn Fn() -> Box<dyn Qdisc>) -> Self {
        self.link_asymmetric(trace.clone(), trace, make_qdisc)
    }

    /// Nest a LinkShell with distinct uplink/downlink traces.
    pub fn link_asymmetric(
        mut self,
        uplink: Trace,
        downlink: Trace,
        make_qdisc: &dyn Fn() -> Box<dyn Qdisc>,
    ) -> Self {
        let name = self.next_name("link");
        let shell = link_shell(
            &self.current,
            &name,
            LinkShellConfig {
                uplink_trace: uplink,
                downlink_trace: downlink,
                policy: OpportunityPolicy::default(),
            },
            make_qdisc,
        );
        // Instrumentation goes innermost so a tap added below wraps it:
        // the tap's per-packet events then describe exactly the qdisc
        // the instruments aggregate.
        if let Some(sink) = &self.qdisc_metrics {
            shell.uplink.set_qdisc_metrics(sink.clone(), "up");
            shell.downlink.set_qdisc_metrics(sink.clone(), "down");
        }
        if let Some(tap) = &self.tap {
            shell
                .uplink
                .set_tap(tap.clone(), self.point(PointKind::Link, Dir::Up));
            shell
                .downlink
                .set_tap(tap.clone(), self.point(PointKind::Link, Dir::Down));
        }
        self.current = shell.inner_ns.clone();
        self.layers.push(ShellLayer::Link(shell));
        self
    }

    /// Nest a LossShell.
    pub fn loss(mut self, uplink_loss: f64, downlink_loss: f64, rng: &RngStream) -> Self {
        let name = self.next_name("loss");
        let shell = loss_shell(&self.current, &name, uplink_loss, downlink_loss, rng);
        if let Some(tap) = &self.tap {
            shell
                .uplink
                .set_tap(tap.clone(), self.point(PointKind::Loss, Dir::Up));
            shell
                .downlink
                .set_tap(tap.clone(), self.point(PointKind::Loss, Dir::Down));
        }
        self.current = shell.inner_ns.clone();
        self.layers.push(ShellLayer::Loss(shell));
        self
    }

    /// The innermost namespace (where the application runs).
    pub fn innermost(&self) -> Namespace {
        self.current.clone()
    }

    /// The layers, outermost first.
    pub fn layers(&self) -> &[ShellLayer] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTail;
    use bytes::Bytes;
    use mm_net::{FnSink, IpAddr, Packet, SocketAddr, TcpFlags, TcpSegment};
    use mm_sim::{Simulator, Timestamp};
    use mm_trace::constant_rate;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn nested_delay_link_stack_accumulates_delay() {
        let mut sim = Simulator::new();
        let root = Namespace::root("root");
        let stack = ShellStack::new(&root)
            .with_shell_overhead(SimDuration::ZERO)
            .delay(SimDuration::from_millis(30))
            .link(
                constant_rate(12.0, 1000),
                &|| Box::new(DropTail::infinite()),
            );
        let inner = stack.innermost();

        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let a = arrivals.clone();
        root.add_host(
            IpAddr::new(8, 8, 8, 8),
            FnSink::new(move |sim: &mut Simulator, _| a.borrow_mut().push(sim.now())),
        );
        let pkt = Packet {
            id: 0,
            src: SocketAddr::new(IpAddr::new(100, 64, 0, 2), 1000),
            dst: SocketAddr::new(IpAddr::new(8, 8, 8, 8), 80),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0u8; 1460]),
            },
            corrupted: false,
        };
        inner.router().deliver(&mut sim, pkt);
        sim.run();
        // Packet waits for a link opportunity (1/ms at 12 Mbit/s ⇒ ≤1 ms),
        // then crosses the 30 ms delay.
        let got = arrivals.borrow()[0];
        assert!(got >= Timestamp::from_millis(30));
        assert!(got <= Timestamp::from_millis(32), "arrived {got}");
        assert_eq!(stack.layers().len(), 2);
    }

    #[test]
    fn stack_names_are_unique() {
        let root = Namespace::root("root");
        let stack = ShellStack::new(&root)
            .delay(SimDuration::from_millis(1))
            .delay(SimDuration::from_millis(2));
        let names: Vec<String> = stack.layers().iter().map(|l| l.inner_ns().name()).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
    }

    #[test]
    fn innermost_traffic_isolated_from_sibling_stack() {
        // Two sibling stacks under one root: traffic in one must never
        // increment counters in the other (the paper's isolation claim).
        let mut sim = Simulator::new();
        let root = Namespace::root("root");
        let stack_a = ShellStack::new(&root)
            .with_shell_overhead(SimDuration::ZERO)
            .delay(SimDuration::from_millis(10));
        let stack_b = ShellStack::new(&root)
            .with_shell_overhead(SimDuration::ZERO)
            .delay(SimDuration::from_millis(10));
        let sink_count = Rc::new(RefCell::new(0));
        let sc = sink_count.clone();
        root.add_host(
            IpAddr::new(8, 8, 8, 8),
            FnSink::new(move |_: &mut Simulator, _| *sc.borrow_mut() += 1),
        );
        let pkt = Packet {
            id: 0,
            src: SocketAddr::new(IpAddr::new(100, 64, 0, 2), 1000),
            dst: SocketAddr::new(IpAddr::new(8, 8, 8, 8), 80),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::new(),
            },
            corrupted: false,
        };
        stack_a.innermost().router().deliver(&mut sim, pkt);
        sim.run();
        assert_eq!(*sink_count.borrow(), 1);
        assert_eq!(stack_a.innermost().counters().forwarded_up, 1);
        assert_eq!(stack_b.innermost().counters().total(), 0);
    }
}
