//! Queue disciplines for LinkShell.
//!
//! Mahimahi's `mm-link` ships several: an infinite droptail queue (the
//! default the paper uses), bounded droptail/drophead, and the AQMs CoDel
//! and PIE. All are implemented here behind one [`Qdisc`] trait so benches
//! can ablate them.

use std::collections::VecDeque;

use mm_net::Packet;
use mm_sim::{SimDuration, Timestamp};

/// Outcome of offering a packet to a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueResult {
    Accepted,
    Dropped,
}

/// Counters every discipline keeps.
#[derive(Debug, Clone, Copy, Default)]
pub struct QdiscStats {
    pub enqueued: u64,
    pub dequeued: u64,
    pub dropped: u64,
    /// Sum of sojourn times of dequeued packets, for mean-delay reporting.
    pub total_sojourn: SimDuration,
    /// High-water mark of the backlog in packets — the standing-queue
    /// measurement the pacing/BBR experiments compare senders by.
    pub max_backlog_packets: usize,
    /// High-water mark of the backlog in wire bytes. Tracks the same
    /// peaks as the packet count but is the right denomination for
    /// byte-limited buffers and for judging mixed small-ack/full-MTU
    /// traffic, where packet counts flatter the queue.
    pub max_backlog_bytes: usize,
}

impl QdiscStats {
    /// Mean queueing delay of dequeued packets.
    pub fn mean_sojourn(&self) -> SimDuration {
        match self.total_sojourn.as_nanos().checked_div(self.dequeued) {
            None => SimDuration::ZERO,
            Some(mean) => SimDuration::from_nanos(mean),
        }
    }
}

/// A packet queue with a drop policy.
pub trait Qdisc {
    /// Offer a packet at time `now`.
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult;
    /// Remove the next packet to transmit at time `now`.
    fn dequeue(&mut self, now: Timestamp) -> Option<Packet>;
    /// Wire size of the packet `dequeue` would return next, if any.
    /// (For AQMs that drop at dequeue time this is a best-effort hint.)
    fn peek_size(&self) -> Option<usize>;
    /// Packets currently queued.
    fn len_packets(&self) -> usize;
    /// Bytes currently queued (wire sizes).
    fn len_bytes(&self) -> usize;
    /// Counter snapshot.
    fn stats(&self) -> QdiscStats;
}

/// Capacity limit for bounded queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueLimit {
    /// No limit (mm-link's default).
    Infinite,
    /// At most this many packets.
    Packets(usize),
    /// At most this many bytes (wire sizes).
    Bytes(usize),
}

struct Entry {
    pkt: Packet,
    enqueued_at: Timestamp,
}

/// FIFO with tail drop on overflow (or never, if infinite).
pub struct DropTail {
    q: VecDeque<Entry>,
    bytes: usize,
    limit: QueueLimit,
    stats: QdiscStats,
}

impl DropTail {
    /// Bounded or infinite droptail queue.
    pub fn new(limit: QueueLimit) -> Self {
        DropTail {
            q: VecDeque::new(),
            bytes: 0,
            limit,
            stats: QdiscStats::default(),
        }
    }

    /// The paper's default: infinite.
    pub fn infinite() -> Self {
        DropTail::new(QueueLimit::Infinite)
    }

    fn would_overflow(&self, pkt: &Packet) -> bool {
        match self.limit {
            QueueLimit::Infinite => false,
            QueueLimit::Packets(n) => self.q.len() + 1 > n,
            QueueLimit::Bytes(b) => self.bytes + pkt.wire_size() > b,
        }
    }
}

impl Qdisc for DropTail {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        if self.would_overflow(&pkt) {
            self.stats.dropped += 1;
            return EnqueueResult::Dropped;
        }
        self.bytes += pkt.wire_size();
        self.stats.enqueued += 1;
        self.q.push_back(Entry {
            pkt,
            enqueued_at: now,
        });
        self.stats.max_backlog_packets = self.stats.max_backlog_packets.max(self.q.len());
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let e = self.q.pop_front()?;
        self.bytes -= e.pkt.wire_size();
        self.stats.dequeued += 1;
        self.stats.total_sojourn += now.saturating_duration_since(e.enqueued_at);
        Some(e.pkt)
    }

    fn peek_size(&self) -> Option<usize> {
        self.q.front().map(|e| e.pkt.wire_size())
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// FIFO that evicts the *head* (oldest packet) on overflow — keeps queue
/// latency bounded at the cost of in-flight data.
pub struct DropHead {
    q: VecDeque<Entry>,
    bytes: usize,
    limit: QueueLimit,
    stats: QdiscStats,
}

impl DropHead {
    /// Bounded drophead queue (an infinite drophead is just droptail).
    pub fn new(limit: QueueLimit) -> Self {
        assert!(
            limit != QueueLimit::Infinite,
            "infinite drophead is meaningless; use DropTail::infinite()"
        );
        DropHead {
            q: VecDeque::new(),
            bytes: 0,
            limit,
            stats: QdiscStats::default(),
        }
    }
}

impl Qdisc for DropHead {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        self.bytes += pkt.wire_size();
        self.stats.enqueued += 1;
        self.q.push_back(Entry {
            pkt,
            enqueued_at: now,
        });
        loop {
            let overflow = match self.limit {
                QueueLimit::Infinite => false,
                QueueLimit::Packets(n) => self.q.len() > n,
                QueueLimit::Bytes(b) => self.bytes > b,
            };
            if !overflow {
                break;
            }
            if let Some(victim) = self.q.pop_front() {
                self.bytes -= victim.pkt.wire_size();
                self.stats.dropped += 1;
            } else {
                break;
            }
        }
        self.stats.max_backlog_packets = self.stats.max_backlog_packets.max(self.q.len());
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let e = self.q.pop_front()?;
        self.bytes -= e.pkt.wire_size();
        self.stats.dequeued += 1;
        self.stats.total_sojourn += now.saturating_duration_since(e.enqueued_at);
        Some(e.pkt)
    }

    fn peek_size(&self) -> Option<usize> {
        self.q.front().map(|e| e.pkt.wire_size())
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// CoDel AQM (ACM Queue 2012 / RFC 8289), operating on sojourn time.
pub struct CoDel {
    q: VecDeque<Entry>,
    bytes: usize,
    stats: QdiscStats,
    target: SimDuration,
    interval: SimDuration,
    /// Time at which the sojourn first exceeded target, if tracking.
    first_above: Option<Timestamp>,
    dropping: bool,
    drop_next: Timestamp,
    drop_count: u32,
}

impl CoDel {
    /// CoDel with explicit parameters.
    pub fn new(target: SimDuration, interval: SimDuration) -> Self {
        CoDel {
            q: VecDeque::new(),
            bytes: 0,
            stats: QdiscStats::default(),
            target,
            interval,
            first_above: None,
            dropping: false,
            drop_next: Timestamp::ZERO,
            drop_count: 0,
        }
    }

    /// RFC defaults: target 5 ms, interval 100 ms.
    pub fn default_params() -> Self {
        CoDel::new(SimDuration::from_millis(5), SimDuration::from_millis(100))
    }

    fn control_law(&self, t: Timestamp) -> Timestamp {
        t + SimDuration::from_nanos(
            (self.interval.as_nanos() as f64 / (self.drop_count.max(1) as f64).sqrt()) as u64,
        )
    }

    /// Pop the head and decide whether CoDel considers it "OK to send".
    /// Returns (packet, sojourn_was_below_target).
    fn do_dequeue(&mut self, now: Timestamp) -> Option<(Packet, bool)> {
        let e = self.q.pop_front()?;
        self.bytes -= e.pkt.wire_size();
        let sojourn = now.saturating_duration_since(e.enqueued_at);
        let ok = if sojourn < self.target || self.bytes <= mm_net::MTU {
            self.first_above = None;
            true
        } else {
            match self.first_above {
                None => {
                    self.first_above = Some(now + self.interval);
                    true
                }
                Some(fa) => now < fa,
            }
        };
        self.stats.total_sojourn += sojourn;
        Some((e.pkt, ok))
    }
}

impl Qdisc for CoDel {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        self.bytes += pkt.wire_size();
        self.stats.enqueued += 1;
        self.q.push_back(Entry {
            pkt,
            enqueued_at: now,
        });
        self.stats.max_backlog_packets = self.stats.max_backlog_packets.max(self.q.len());
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let Some((pkt, ok)) = self.do_dequeue(now) else {
            self.dropping = false;
            return None;
        };
        let mut pkt = Some(pkt);
        if self.dropping {
            if ok {
                self.dropping = false;
            } else {
                // Drop packets on schedule while above target.
                while self.dropping && now >= self.drop_next {
                    self.stats.dropped += 1;
                    self.drop_count += 1;
                    match self.do_dequeue(now) {
                        Some((next_pkt, next_ok)) => {
                            pkt = Some(next_pkt);
                            if next_ok {
                                self.dropping = false;
                            } else {
                                self.drop_next = self.control_law(self.drop_next);
                            }
                        }
                        None => {
                            pkt = None;
                            self.dropping = false;
                        }
                    }
                }
            }
        } else if !ok
            && (now.saturating_duration_since(self.drop_next) < self.interval
                || self.drop_count >= 1)
        {
            // Re-enter dropping state.
            self.dropping = true;
            self.stats.dropped += 1;
            self.drop_count = if now.saturating_duration_since(self.drop_next) < self.interval {
                (self.drop_count.saturating_sub(2)).max(1)
            } else {
                1
            };
            pkt = self.do_dequeue(now).map(|(p, _)| Some(p)).unwrap_or(None);
            self.drop_next = self.control_law(now);
        } else if !ok {
            self.dropping = true;
            self.stats.dropped += 1;
            self.drop_count = 1;
            pkt = self.do_dequeue(now).map(|(p, _)| Some(p)).unwrap_or(None);
            self.drop_next = self.control_law(now);
        }
        if pkt.is_some() {
            self.stats.dequeued += 1;
        }
        pkt
    }

    fn peek_size(&self) -> Option<usize> {
        self.q.front().map(|e| e.pkt.wire_size())
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// PIE AQM (RFC 8033, simplified): drop probability updated from the
/// estimated queueing delay on each enqueue, using the deterministic
/// stream of arrival times rather than a separate update timer.
pub struct Pie {
    q: VecDeque<Entry>,
    bytes: usize,
    stats: QdiscStats,
    target: SimDuration,
    update_period: SimDuration,
    alpha: f64,
    beta: f64,
    drop_prob: f64,
    last_update: Timestamp,
    old_delay: SimDuration,
    /// Deterministic pseudo-random stream for drop decisions.
    rng_state: u64,
    /// Estimated departure rate, bytes/sec (set by the link when known).
    depart_rate: f64,
}

impl Pie {
    /// PIE with explicit target delay; `depart_rate` is the link's rate in
    /// bytes/sec, used to estimate delay from backlog.
    pub fn new(target: SimDuration, depart_rate: f64) -> Self {
        assert!(depart_rate > 0.0);
        Pie {
            q: VecDeque::new(),
            bytes: 0,
            stats: QdiscStats::default(),
            target,
            update_period: SimDuration::from_millis(15),
            alpha: 0.125,
            beta: 1.25,
            drop_prob: 0.0,
            last_update: Timestamp::ZERO,
            old_delay: SimDuration::ZERO,
            rng_state: 0x1234_5678_9abc_def0,
            depart_rate,
        }
    }

    /// RFC default target of 15 ms.
    pub fn default_params(depart_rate: f64) -> Self {
        Pie::new(SimDuration::from_millis(15), depart_rate)
    }

    fn next_rand(&mut self) -> f64 {
        // xorshift64*: deterministic, cheap, good enough for drop decisions.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    fn current_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.bytes as f64 / self.depart_rate)
    }

    fn maybe_update(&mut self, now: Timestamp) {
        if now.saturating_duration_since(self.last_update) < self.update_period {
            return;
        }
        self.last_update = now;
        let cur = self.current_delay();
        let p_delta = self.alpha * (cur.as_secs_f64() - self.target.as_secs_f64())
            + self.beta * (cur.as_secs_f64() - self.old_delay.as_secs_f64());
        // Scale adjustments down when drop_prob is small (RFC 8033 §4.2).
        let scale = if self.drop_prob < 0.000001 {
            0.0009765625 // 1/2048
        } else if self.drop_prob < 0.00001 {
            0.001953125
        } else if self.drop_prob < 0.0001 {
            0.00390625
        } else if self.drop_prob < 0.001 {
            0.0078125
        } else if self.drop_prob < 0.01 {
            0.03125
        } else if self.drop_prob < 0.1 {
            0.125
        } else {
            1.0
        };
        self.drop_prob = (self.drop_prob + p_delta * scale).clamp(0.0, 1.0);
        // Decay when the queue is idle.
        if cur.is_zero() && self.old_delay.is_zero() {
            self.drop_prob *= 0.98;
        }
        self.old_delay = cur;
    }
}

impl Qdisc for Pie {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        self.maybe_update(now);
        // Never drop when the backlog is trivial (burst allowance).
        let tiny = self.bytes <= 2 * mm_net::MTU;
        if !tiny && self.drop_prob > 0.0 && self.next_rand() < self.drop_prob {
            self.stats.dropped += 1;
            return EnqueueResult::Dropped;
        }
        self.bytes += pkt.wire_size();
        self.stats.enqueued += 1;
        self.q.push_back(Entry {
            pkt,
            enqueued_at: now,
        });
        self.stats.max_backlog_packets = self.stats.max_backlog_packets.max(self.q.len());
        self.stats.max_backlog_bytes = self.stats.max_backlog_bytes.max(self.bytes);
        EnqueueResult::Accepted
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let e = self.q.pop_front()?;
        self.bytes -= e.pkt.wire_size();
        self.stats.dequeued += 1;
        self.stats.total_sojourn += now.saturating_duration_since(e.enqueued_at);
        Some(e.pkt)
    }

    fn peek_size(&self) -> Option<usize> {
        self.q.front().map(|e| e.pkt.wire_size())
    }

    fn len_packets(&self) -> usize {
        self.q.len()
    }

    fn len_bytes(&self) -> usize {
        self.bytes
    }

    fn stats(&self) -> QdiscStats {
        self.stats
    }
}

/// Factory for building fresh qdiscs (each link direction needs its own).
pub type QdiscFactory = Box<dyn Fn() -> Box<dyn Qdisc>>;

/// Convenience factories.
pub mod factories {
    use super::*;

    /// Infinite droptail (the paper's configuration).
    pub fn infinite() -> QdiscFactory {
        Box::new(|| Box::new(DropTail::infinite()))
    }

    /// Bounded droptail.
    pub fn droptail(limit: QueueLimit) -> QdiscFactory {
        Box::new(move || Box::new(DropTail::new(limit)))
    }

    /// Bounded drophead.
    pub fn drophead(limit: QueueLimit) -> QdiscFactory {
        Box::new(move || Box::new(DropHead::new(limit)))
    }

    /// CoDel with RFC defaults.
    pub fn codel() -> QdiscFactory {
        Box::new(|| Box::new(CoDel::default_params()))
    }

    /// PIE with RFC default target, given the link rate in Mbit/s.
    pub fn pie(link_mbps: f64) -> QdiscFactory {
        Box::new(move || Box::new(Pie::default_params(link_mbps * 1e6 / 8.0)))
    }

    /// Wrap a factory so every qdisc it builds reports into `sink`
    /// under the given direction label (see [`super::InstrumentedQdisc`]).
    pub fn instrumented(
        inner: QdiscFactory,
        sink: mm_metrics::MetricsHandle,
        dir: &'static str,
    ) -> QdiscFactory {
        Box::new(move || Box::new(InstrumentedQdisc::new(inner(), sink.clone(), dir)))
    }
}

/// A [`Qdisc`] decorator exporting queue behavior to a metrics sink:
/// a backlog histogram observed at every enqueue, a sojourn-time
/// histogram observed at every dequeue, and drop/enqueue counters.
/// Opt-in via [`factories::instrumented`] — nothing in the default
/// experiment paths constructs one, and the decorator never alters
/// accept/drop decisions or packet order, so enabling it changes
/// metrics output only.
pub struct InstrumentedQdisc {
    inner: Box<dyn Qdisc>,
    sink: mm_metrics::MetricsHandle,
    /// Direction label baked into the metric names (metric names must
    /// be static, so we select between two fixed name sets).
    dir: &'static str,
}

impl InstrumentedQdisc {
    /// Wrap `inner`, labeling metrics for `dir` (`"up"` or `"down"`;
    /// anything else reports under the `"down"` names).
    pub fn new(inner: Box<dyn Qdisc>, sink: mm_metrics::MetricsHandle, dir: &'static str) -> Self {
        InstrumentedQdisc { inner, sink, dir }
    }

    #[rustfmt::skip]
    fn names(&self) -> (&'static str, &'static str, &'static str, &'static str, &'static str) {
        if self.dir == "up" {
            (
                "qdisc_up_backlog_packets",
                "qdisc_up_sojourn_seconds",
                "qdisc_up_drops_total",
                "qdisc_up_enqueues_total",
                "qdisc_up_backlog_now_packets",
            )
        } else {
            (
                "qdisc_down_backlog_packets",
                "qdisc_down_sojourn_seconds",
                "qdisc_down_drops_total",
                "qdisc_down_enqueues_total",
                "qdisc_down_backlog_now_packets",
            )
        }
    }
}

impl Qdisc for InstrumentedQdisc {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        let drops_before = self.inner.stats().dropped;
        let result = self.inner.enqueue(now, pkt);
        let (backlog, _, drops, enqueues, backlog_now) = self.names();
        self.sink.observe(backlog, self.inner.len_packets() as f64);
        // The instantaneous backlog as a gauge, so conformance audits
        // can cross-check a tap's packet ledger against the qdisc's own
        // view of its depth.
        self.sink
            .gauge_set(backlog_now, self.inner.len_packets() as f64);
        self.sink.counter_add(enqueues, 1);
        // Count via the stats delta, not the enqueue result: AQMs can
        // accept this packet while dropping another (DropHead evicts
        // the oldest packet to admit the newest).
        let dropped = self.inner.stats().dropped - drops_before;
        if dropped > 0 {
            self.sink.counter_add(drops, dropped);
        }
        result
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let (_, sojourn, drops, _, backlog_now) = self.names();
        let before = self.inner.stats();
        let pkt = self.inner.dequeue(now);
        let after = self.inner.stats();
        if pkt.is_some() {
            // The per-packet sojourn is the total-sojourn delta — the
            // trait exposes sums, not per-packet stamps.
            let delta = after.total_sojourn.saturating_sub(before.total_sojourn);
            self.sink.observe(sojourn, delta.as_secs_f64());
        }
        // CoDel drops at dequeue time.
        if after.dropped > before.dropped {
            self.sink.counter_add(drops, after.dropped - before.dropped);
        }
        self.sink
            .gauge_set(backlog_now, self.inner.len_packets() as f64);
        pkt
    }

    fn peek_size(&self) -> Option<usize> {
        self.inner.peek_size()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
    }

    fn stats(&self) -> QdiscStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_net::{IpAddr, SocketAddr, TcpFlags, TcpSegment};

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0; payload]),
            },
            corrupted: false,
        }
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn droptail_fifo_order() {
        let mut q = DropTail::infinite();
        for i in 0..5 {
            assert_eq!(q.enqueue(t(0), pkt(i, 100)), EnqueueResult::Accepted);
        }
        for i in 0..5 {
            assert_eq!(q.dequeue(t(1)).unwrap().id, i);
        }
        assert!(q.dequeue(t(2)).is_none());
    }

    #[test]
    fn droptail_packet_limit() {
        let mut q = DropTail::new(QueueLimit::Packets(2));
        assert_eq!(q.enqueue(t(0), pkt(0, 10)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(1, 10)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(2, 10)), EnqueueResult::Dropped);
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len_packets(), 2);
    }

    #[test]
    fn droptail_byte_limit() {
        let mut q = DropTail::new(QueueLimit::Bytes(3000));
        assert_eq!(q.enqueue(t(0), pkt(0, 1460)), EnqueueResult::Accepted); // 1500
        assert_eq!(q.enqueue(t(0), pkt(1, 1460)), EnqueueResult::Accepted); // 3000
        assert_eq!(q.enqueue(t(0), pkt(2, 0)), EnqueueResult::Dropped); // +40 > 3000
        assert_eq!(q.len_bytes(), 3000);
    }

    #[test]
    fn droptail_sojourn_accounting() {
        let mut q = DropTail::infinite();
        q.enqueue(t(10), pkt(0, 0));
        q.enqueue(t(20), pkt(1, 0));
        q.dequeue(t(30));
        q.dequeue(t(30));
        let stats = q.stats();
        // Sojourns 20ms and 10ms → mean 15ms.
        assert_eq!(stats.mean_sojourn(), SimDuration::from_millis(15));
    }

    #[test]
    fn max_backlog_high_water_mark() {
        let mut q = DropTail::infinite();
        for i in 0..5 {
            q.enqueue(t(0), pkt(i, 100));
        }
        q.dequeue(t(1));
        q.dequeue(t(1));
        q.enqueue(t(2), pkt(9, 100));
        // Peak was 5; the current backlog of 4 must not lower it.
        assert_eq!(q.stats().max_backlog_packets, 5);
        assert_eq!(q.len_packets(), 4);
        // The byte high-water tracked the same peak (5 packets of 100
        // payload bytes plus headers) and holds it the same way.
        let peak_bytes = 5 * pkt(0, 100).wire_size();
        assert_eq!(q.stats().max_backlog_bytes, peak_bytes);
        assert!(q.len_bytes() < peak_bytes);
    }

    #[test]
    fn instrumented_qdisc_observes_without_meddling() {
        use mm_metrics::{MetricsHandle, Registry, RegistrySink};
        let registry = Registry::new();
        let sink = MetricsHandle::new(RegistrySink::new(registry.clone()));
        let mut q = InstrumentedQdisc::new(
            Box::new(DropTail::new(QueueLimit::Packets(2))),
            sink,
            "down",
        );
        assert_eq!(q.enqueue(t(0), pkt(0, 100)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(1, 100)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(t(0), pkt(2, 100)), EnqueueResult::Dropped);
        assert_eq!(q.dequeue(t(10)).unwrap().id, 0);
        let text = registry.encode();
        assert!(text.contains("qdisc_down_enqueues_total 3"));
        assert!(text.contains("qdisc_down_drops_total 1"));
        // One dequeue after 10 ms of sojourn.
        assert!(text.contains("qdisc_down_sojourn_seconds_count 1"));
        assert!(text.contains("qdisc_down_sojourn_seconds_sum 0.01"));
        // The wrapper's own stats are the inner qdisc's.
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len_packets(), 1);
    }

    #[test]
    fn drophead_evicts_oldest() {
        let mut q = DropHead::new(QueueLimit::Packets(2));
        q.enqueue(t(0), pkt(0, 10));
        q.enqueue(t(0), pkt(1, 10));
        assert_eq!(q.enqueue(t(0), pkt(2, 10)), EnqueueResult::Accepted);
        assert_eq!(q.stats().dropped, 1);
        // Head (id 0) was evicted; 1 and 2 remain.
        assert_eq!(q.dequeue(t(1)).unwrap().id, 1);
        assert_eq!(q.dequeue(t(1)).unwrap().id, 2);
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn infinite_drophead_rejected() {
        let _ = DropHead::new(QueueLimit::Infinite);
    }

    #[test]
    fn codel_no_drops_under_light_load() {
        let mut q = CoDel::default_params();
        for i in 0..100 {
            q.enqueue(t(i), pkt(i, 1000));
            // Dequeued quickly: sojourn ~1ms, below 5ms target.
            let got = q.dequeue(t(i + 1));
            assert!(got.is_some());
        }
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn codel_drops_under_standing_queue() {
        let mut q = CoDel::default_params();
        // Build a standing queue: enqueue 500 packets at t=0, drain slowly
        // (1 per 10ms → sojourn grows far beyond 5ms target).
        for i in 0..500 {
            q.enqueue(t(0), pkt(i, 1400));
        }
        let mut now_ms = 200; // everything already 200ms old
        let mut drained = 0;
        while q.dequeue(t(now_ms)).is_some() {
            now_ms += 10;
            drained += 1;
            if drained > 1000 {
                break;
            }
        }
        assert!(
            q.stats().dropped > 5,
            "CoDel should shed load: dropped {}",
            q.stats().dropped
        );
    }

    #[test]
    fn pie_no_drops_when_queue_short() {
        let mut q = Pie::default_params(1e6);
        for i in 0..200 {
            assert_eq!(q.enqueue(t(i), pkt(i, 100)), EnqueueResult::Accepted);
            q.dequeue(t(i));
        }
        assert_eq!(q.stats().dropped, 0);
    }

    #[test]
    fn pie_drops_as_delay_grows() {
        // Slow link: 100 kB/s; pour in 1500-byte packets every ms without
        // draining → delay estimate explodes, drop prob rises.
        let mut q = Pie::default_params(100_000.0);
        let mut accepted = 0;
        for i in 0..2000 {
            if q.enqueue(t(i), pkt(i, 1460)) == EnqueueResult::Accepted {
                accepted += 1;
            }
        }
        assert!(q.stats().dropped > 100, "dropped {}", q.stats().dropped);
        assert!(accepted > 0);
    }

    #[test]
    fn factories_produce_fresh_instances() {
        let f = factories::infinite();
        let mut a = f();
        let mut b = f();
        a.enqueue(t(0), pkt(0, 0));
        assert_eq!(a.len_packets(), 1);
        assert_eq!(b.len_packets(), 0);
        b.enqueue(t(0), pkt(1, 0));
        assert_eq!(b.len_packets(), 1);
    }
}
