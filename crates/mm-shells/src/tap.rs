//! Per-packet event tapping for qdiscs: the [`TappedQdisc`] decorator.
//!
//! Where [`crate::queue::InstrumentedQdisc`] aggregates queue behavior
//! into metrics, `TappedQdisc` reports every individual packet
//! milestone — enqueue, dequeue (with exact sojourn), drop (attributed
//! to the *right* packet) — to a [`PacketTap`]. Attribution needs care
//! because the [`Qdisc`] trait only exposes counter deltas: DropHead
//! evicts its oldest packet to admit the newest, and CoDel drops heads
//! at dequeue time. The decorator keeps a shadow FIFO of
//! `(id, size, enqueue time)` triples — every discipline in this
//! workspace is FIFO-ordered — so a drop delta can always be pinned to
//! the packet that actually left.
//!
//! Like every tap, the decorator never alters accept/drop decisions,
//! packet order, or timing: wrapping changes the event stream only.

use std::collections::VecDeque;

use mm_capture::{PacketEvent, PacketEventKind, TapHandle, TapPoint};
use mm_net::Packet;
use mm_sim::Timestamp;

use crate::queue::{EnqueueResult, Qdisc, QdiscStats};

struct Shadow {
    pkt_id: u64,
    size_bytes: u32,
    enqueued_at: Timestamp,
    flow: u64,
}

/// A [`Qdisc`] decorator reporting per-packet events to a tap.
pub struct TappedQdisc {
    inner: Box<dyn Qdisc>,
    tap: TapHandle,
    point: TapPoint,
    shadow: VecDeque<Shadow>,
    /// `inner.stats().dropped` as of the last enqueue/dequeue — drops
    /// only happen inside those calls, so one stats read after each op
    /// yields the same delta as a before/after pair.
    dropped_seen: u64,
}

impl TappedQdisc {
    /// Wrap `inner`, reporting events at `point`.
    pub fn new(inner: Box<dyn Qdisc>, tap: TapHandle, point: TapPoint) -> Self {
        let dropped_seen = inner.stats().dropped;
        TappedQdisc {
            inner,
            tap,
            point,
            shadow: VecDeque::new(),
            dropped_seen,
        }
    }

    /// Drops the inner discipline counted since the last call.
    fn drop_delta(&mut self) -> u64 {
        let dropped = self.inner.stats().dropped;
        let delta = dropped - self.dropped_seen;
        self.dropped_seen = dropped;
        delta
    }

    fn emit(
        &self,
        t: Timestamp,
        kind: PacketEventKind,
        pkt_id: u64,
        size: u32,
        sojourn_ns: u64,
        flow: u64,
    ) {
        self.tap.on_packet(&PacketEvent {
            t_ns: t.as_nanos(),
            kind,
            point: self.point,
            pkt_id,
            size_bytes: size,
            sojourn_ns,
            flow,
        });
    }

    /// Report `n` head-of-queue drops (evictions) from the shadow FIFO.
    fn emit_head_drops(&mut self, now: Timestamp, n: u64) {
        for _ in 0..n {
            let Some(victim) = self.shadow.pop_front() else {
                return;
            };
            self.emit(
                now,
                PacketEventKind::Drop,
                victim.pkt_id,
                victim.size_bytes,
                0,
                victim.flow,
            );
        }
    }
}

impl Qdisc for TappedQdisc {
    fn enqueue(&mut self, now: Timestamp, pkt: Packet) -> EnqueueResult {
        let pkt_id = pkt.id;
        let size = pkt.wire_size() as u32;
        let flow = pkt.flow_key();
        let result = self.inner.enqueue(now, pkt);
        let drop_delta = self.drop_delta();
        match result {
            EnqueueResult::Dropped => {
                // The offered packet itself was refused (droptail/PIE).
                self.emit(now, PacketEventKind::Drop, pkt_id, size, 0, flow);
                debug_assert!(drop_delta >= 1);
            }
            EnqueueResult::Accepted => {
                self.emit(now, PacketEventKind::Enqueue, pkt_id, size, 0, flow);
                self.shadow.push_back(Shadow {
                    pkt_id,
                    size_bytes: size,
                    enqueued_at: now,
                    flow,
                });
                // Accepted-yet-drops-counted means the discipline evicted
                // from the head to make room (DropHead).
                self.emit_head_drops(now, drop_delta);
            }
        }
        result
    }

    fn dequeue(&mut self, now: Timestamp) -> Option<Packet> {
        let pkt = self.inner.dequeue(now);
        let drop_delta = self.drop_delta();
        match &pkt {
            Some(p) => {
                // Shadow entries ahead of the returned packet were
                // dropped inside this dequeue (CoDel's head drops).
                while let Some(head) = self.shadow.pop_front() {
                    if head.pkt_id == p.id {
                        let sojourn = now.saturating_duration_since(head.enqueued_at);
                        self.emit(
                            now,
                            PacketEventKind::Dequeue,
                            head.pkt_id,
                            head.size_bytes,
                            sojourn.as_nanos(),
                            head.flow,
                        );
                        break;
                    }
                    self.emit(
                        now,
                        PacketEventKind::Drop,
                        head.pkt_id,
                        head.size_bytes,
                        0,
                        head.flow,
                    );
                }
            }
            // Nothing returned but drops counted: the discipline dropped
            // its way to an empty queue.
            None => self.emit_head_drops(now, drop_delta),
        }
        pkt
    }

    fn peek_size(&self) -> Option<usize> {
        self.inner.peek_size()
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> usize {
        self.inner.len_bytes()
    }

    fn stats(&self) -> QdiscStats {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{CoDel, DropHead, DropTail, QueueLimit};
    use bytes::Bytes;
    use mm_capture::{Capture, Dir, PointKind};
    use mm_net::{IpAddr, SocketAddr, TcpFlags, TcpSegment};
    use mm_sim::SimDuration;

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0; payload]),
            },
            corrupted: false,
        }
    }

    fn t(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    fn point() -> TapPoint {
        TapPoint {
            kind: PointKind::Link,
            index: 1,
            dir: Dir::Down,
        }
    }

    fn events(cap: &Capture) -> Vec<(PacketEventKind, u64, u64)> {
        cap.data()
            .packets
            .iter()
            .map(|e| (e.kind, e.pkt_id, e.sojourn_ns))
            .collect()
    }

    #[test]
    fn droptail_attributes_tail_drop_to_offered_packet() {
        let cap = Capture::new();
        let mut q = TappedQdisc::new(
            Box::new(DropTail::new(QueueLimit::Packets(1))),
            cap.handle(),
            point(),
        );
        assert_eq!(q.enqueue(t(0), pkt(0, 100)), EnqueueResult::Accepted);
        assert_eq!(q.enqueue(t(1), pkt(1, 100)), EnqueueResult::Dropped);
        assert_eq!(q.dequeue(t(5)).unwrap().id, 0);
        assert_eq!(
            events(&cap),
            vec![
                (PacketEventKind::Enqueue, 0, 0),
                (PacketEventKind::Drop, 1, 0),
                (PacketEventKind::Dequeue, 0, 5_000_000),
            ]
        );
    }

    #[test]
    fn drophead_attributes_eviction_to_oldest_packet() {
        let cap = Capture::new();
        let mut q = TappedQdisc::new(
            Box::new(DropHead::new(QueueLimit::Packets(2))),
            cap.handle(),
            point(),
        );
        q.enqueue(t(0), pkt(0, 100));
        q.enqueue(t(0), pkt(1, 100));
        // Admitting id 2 evicts id 0 (the head), not id 2.
        assert_eq!(q.enqueue(t(1), pkt(2, 100)), EnqueueResult::Accepted);
        assert_eq!(q.dequeue(t(2)).unwrap().id, 1);
        assert_eq!(q.dequeue(t(2)).unwrap().id, 2);
        assert_eq!(
            events(&cap),
            vec![
                (PacketEventKind::Enqueue, 0, 0),
                (PacketEventKind::Enqueue, 1, 0),
                (PacketEventKind::Enqueue, 2, 0),
                (PacketEventKind::Drop, 0, 0),
                (PacketEventKind::Dequeue, 1, 2_000_000),
                (PacketEventKind::Dequeue, 2, 1_000_000),
            ]
        );
    }

    #[test]
    fn codel_dequeue_drops_attributed_to_skipped_heads() {
        // Build a deep standing queue and drain slowly so CoDel sheds;
        // every drop the inner qdisc counts must surface as a Drop event
        // for a packet that was previously enqueued, and each dequeued
        // packet must match the id the caller received.
        let cap = Capture::new();
        let mut q = TappedQdisc::new(Box::new(CoDel::default_params()), cap.handle(), point());
        for i in 0..500 {
            q.enqueue(t(0), pkt(i, 1400));
        }
        let mut now_ms = 200;
        let mut got = Vec::new();
        while let Some(p) = q.dequeue(t(now_ms)) {
            got.push(p.id);
            now_ms += 10;
            if got.len() > 1000 {
                break;
            }
        }
        let stats = q.stats();
        assert!(stats.dropped > 5, "test needs CoDel to shed");
        let data = cap.data();
        let drops: Vec<u64> = data
            .packets
            .iter()
            .filter(|e| e.kind == PacketEventKind::Drop)
            .map(|e| e.pkt_id)
            .collect();
        let deqs: Vec<u64> = data
            .packets
            .iter()
            .filter(|e| e.kind == PacketEventKind::Dequeue)
            .map(|e| e.pkt_id)
            .collect();
        assert_eq!(drops.len() as u64, stats.dropped);
        assert_eq!(deqs, got, "dequeue events must mirror returned packets");
        // Every packet was accounted exactly once: dropped or dequeued.
        let mut all: Vec<u64> = drops.iter().chain(deqs.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..500).collect::<Vec<u64>>());
    }

    #[test]
    fn sojourn_matches_queue_wait() {
        let cap = Capture::new();
        let mut q = TappedQdisc::new(Box::new(DropTail::infinite()), cap.handle(), point());
        q.enqueue(t(10), pkt(0, 0));
        q.dequeue(t(25));
        let data = cap.data();
        let deq = data
            .packets
            .iter()
            .find(|e| e.kind == PacketEventKind::Dequeue)
            .unwrap();
        assert_eq!(
            SimDuration::from_nanos(deq.sojourn_ns),
            SimDuration::from_millis(15)
        );
    }

    #[test]
    fn tapping_never_changes_decisions() {
        // Same offered sequence through a bare and a tapped qdisc:
        // identical accept/drop outcomes and identical dequeue order.
        let offered: Vec<(u64, usize)> = (0..50)
            .map(|i| (i, if i % 3 == 0 { 1460 } else { 0 }))
            .collect();
        let mut bare: Box<dyn Qdisc> = Box::new(DropHead::new(QueueLimit::Packets(5)));
        let cap = Capture::new();
        let mut tapped = TappedQdisc::new(
            Box::new(DropHead::new(QueueLimit::Packets(5))),
            cap.handle(),
            point(),
        );
        let mut bare_out = Vec::new();
        let mut tapped_out = Vec::new();
        for (i, &(id, sz)) in offered.iter().enumerate() {
            let now = t(i as u64);
            assert_eq!(
                bare.enqueue(now, pkt(id, sz)),
                tapped.enqueue(now, pkt(id, sz))
            );
            if i % 2 == 0 {
                bare_out.push(bare.dequeue(now).map(|p| p.id));
                tapped_out.push(tapped.dequeue(now).map(|p| p.id));
            }
        }
        assert_eq!(bare_out, tapped_out);
        assert_eq!(bare.stats().dropped, tapped.stats().dropped);
    }
}
