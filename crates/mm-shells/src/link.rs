//! LinkShell: trace-driven link emulation.
//!
//! From the paper: "When a packet arrives into the link, it is directly
//! placed into either the uplink or downlink packet queue. LinkShell
//! releases packets from each queue based on the corresponding
//! packet-delivery trace. Each line in the trace is a packet-delivery
//! opportunity: the time at which an MTU-sized packet will be delivered."
//!
//! Opportunities are use-it-or-lose-it: while the queue is empty they pass
//! unused; the emulator walks the (wrapping) trace lazily, arming a timer
//! only while packets are queued.

use std::cell::RefCell;
use std::rc::Rc;

use mm_capture::{LinkMeta, PacketEvent, PacketEventKind, TapHandle, TapPoint};
use mm_net::{Namespace, Packet, PacketSink, SinkRef, MTU};
use mm_sim::{Simulator, Timer, Timestamp};
use mm_trace::Trace;

use crate::queue::{DropTail, EnqueueResult, Qdisc, QdiscStats};
use crate::tap::TappedQdisc;

/// How much a single delivery opportunity can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpportunityPolicy {
    /// Up to MTU bytes per opportunity: several small packets may share
    /// one opportunity (mm-link's byte-accounting behaviour).
    #[default]
    ByteBudget,
    /// Exactly one packet per opportunity regardless of size
    /// (conservative ablation).
    PacketPerOpportunity,
}

/// Counters for one trace-link direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkStats {
    pub arrived: u64,
    pub delivered: u64,
    pub delivered_bytes: u64,
    pub dropped_by_queue: u64,
    /// Delivery opportunities consumed (for utilization reporting).
    pub opportunities_used: u64,
}

struct LinkInner {
    trace: Trace,
    cursor: u64,
    qdisc: Box<dyn Qdisc>,
    policy: OpportunityPolicy,
    next: SinkRef,
    timer: Timer,
    wakeup_armed: bool,
    stats: LinkStats,
    /// Per-packet observability hook ([`TraceLink::set_tap`]); `None`
    /// (the default) costs one branch per delivery.
    tap: Option<(TapHandle, TapPoint)>,
}

/// One direction of a LinkShell.
pub struct TraceLink {
    inner: Rc<RefCell<LinkInner>>,
}

impl TraceLink {
    /// A trace-driven direction feeding `next`.
    pub fn new(
        trace: Trace,
        qdisc: Box<dyn Qdisc>,
        policy: OpportunityPolicy,
        next: SinkRef,
    ) -> Rc<Self> {
        Rc::new(TraceLink {
            inner: Rc::new(RefCell::new(LinkInner {
                trace,
                cursor: 0,
                qdisc,
                policy,
                next,
                timer: Timer::tagged("sim_events_link_total"),
                wakeup_armed: false,
                stats: LinkStats::default(),
                tap: None,
            })),
        })
    }

    /// Attach a per-packet tap at `point`: the qdisc is wrapped in a
    /// [`TappedQdisc`] (enqueue/dequeue/drop events), deliveries to the
    /// next hop report as [`PacketEventKind::Deliver`], and the trace's
    /// opportunity schedule is reported once as [`LinkMeta`] so offline
    /// analyzers can reconstruct the capacity series. Call before any
    /// traffic flows; taps observe only and never change behavior.
    pub fn set_tap(&self, tap: TapHandle, point: TapPoint) {
        let mut inner = self.inner.borrow_mut();
        tap.on_link_meta(&LinkMeta {
            point,
            deliveries_ms: inner.trace.deliveries_ms().into(),
            period_ms: inner.trace.period_ms(),
            mtu_bytes: MTU as u32,
        });
        let old = std::mem::replace(&mut inner.qdisc, Box::new(DropTail::infinite()));
        inner.qdisc = Box::new(TappedQdisc::new(old, tap.clone(), point));
        inner.tap = Some((tap, point));
    }

    /// Wrap the qdisc in an [`crate::queue::InstrumentedQdisc`]
    /// reporting into `sink` under `dir` (`"up"`/`"down"`). Call before
    /// [`TraceLink::set_tap`] so a tap's events stay outermost; like
    /// taps, instrumentation observes only and never changes behavior.
    pub fn set_qdisc_metrics(&self, sink: mm_metrics::MetricsHandle, dir: &'static str) {
        let mut inner = self.inner.borrow_mut();
        let old = std::mem::replace(&mut inner.qdisc, Box::new(DropTail::infinite()));
        inner.qdisc = Box::new(crate::queue::InstrumentedQdisc::new(old, sink, dir));
    }

    /// Counters snapshot.
    pub fn stats(&self) -> LinkStats {
        self.inner.borrow().stats
    }

    /// Queue-discipline counters.
    pub fn qdisc_stats(&self) -> QdiscStats {
        self.inner.borrow().qdisc.stats()
    }

    /// Current queue backlog in packets.
    pub fn backlog_packets(&self) -> usize {
        self.inner.borrow().qdisc.len_packets()
    }

    fn opportunity_time(trace: &Trace, i: u64) -> Timestamp {
        Timestamp::from_millis(trace.opportunity_ms(i))
    }

    /// Report one delivery to the tap, if attached.
    fn tap_deliver(tap: &Option<(TapHandle, TapPoint)>, now: Timestamp, pkt: &Packet) {
        if let Some((tap, point)) = tap {
            tap.on_packet(&PacketEvent {
                t_ns: now.as_nanos(),
                kind: PacketEventKind::Deliver,
                point: *point,
                pkt_id: pkt.id,
                size_bytes: pkt.wire_size() as u32,
                sojourn_ns: 0,
                flow: pkt.flow_key(),
            });
        }
    }

    /// Arm the wakeup timer for opportunity `cursor` (must not already be
    /// armed). `self_rc` is this link, for the timer closure.
    fn arm(self_rc: &Rc<Self>, sim: &mut Simulator) {
        let (at, timer) = {
            let mut inner = self_rc.inner.borrow_mut();
            debug_assert!(!inner.wakeup_armed);
            inner.wakeup_armed = true;
            let at = Self::opportunity_time(&inner.trace, inner.cursor).max(sim.now());
            (at, inner.timer.clone())
        };
        let me = self_rc.clone();
        timer.arm_at(sim, at, move |sim| TraceLink::on_opportunity(&me, sim));
    }

    /// Consume one delivery opportunity from the queue into `to_deliver`.
    fn consume_opportunity(inner: &mut LinkInner, now: Timestamp, to_deliver: &mut Vec<Packet>) {
        let before = to_deliver.len();
        let mut budget = MTU;
        loop {
            // Peek via len; qdisc has no peek, so dequeue and decide.
            if inner.qdisc.len_packets() == 0 {
                break;
            }
            match inner.policy {
                OpportunityPolicy::PacketPerOpportunity => {
                    if let Some(pkt) = inner.qdisc.dequeue(now) {
                        inner.stats.delivered += 1;
                        inner.stats.delivered_bytes += pkt.wire_size() as u64;
                        Self::tap_deliver(&inner.tap, now, &pkt);
                        to_deliver.push(pkt);
                    }
                    break;
                }
                OpportunityPolicy::ByteBudget => {
                    // All model packets are ≤ MTU, so the head always
                    // fits in a fresh opportunity; stop once the next
                    // packet would exceed the remaining budget.
                    match inner.qdisc.peek_size() {
                        Some(sz) if sz <= budget => {}
                        _ => break,
                    }
                    let Some(pkt) = inner.qdisc.dequeue(now) else {
                        break;
                    };
                    let sz = pkt.wire_size();
                    budget = budget.saturating_sub(sz);
                    inner.stats.delivered += 1;
                    inner.stats.delivered_bytes += sz as u64;
                    Self::tap_deliver(&inner.tap, now, &pkt);
                    to_deliver.push(pkt);
                    if budget == 0 {
                        break;
                    }
                }
            }
        }
        if to_deliver.len() > before {
            inner.stats.opportunities_used += 1;
        }
        inner.cursor += 1;
    }

    fn on_opportunity(self_rc: &Rc<Self>, sim: &mut Simulator) {
        let now = sim.now();
        let mut to_deliver: Vec<Packet> = Vec::new();
        {
            let mut inner = self_rc.inner.borrow_mut();
            inner.wakeup_armed = false;
            // Batch every same-timestamp opportunity into this one wakeup:
            // high-rate traces put tens of opportunities on one
            // millisecond tick, and one timer event per burst (instead of
            // one per packet) keeps the hot path off the event queue. The
            // deliveries are identical to the per-opportunity walk — same
            // packets, same order, same timestamps (packets were handed to
            // `next` only after this whole borrow ended in the unbatched
            // path too, so downstream scheduling order is preserved).
            Self::consume_opportunity(&mut inner, now, &mut to_deliver);
            while inner.qdisc.len_packets() > 0
                && Self::opportunity_time(&inner.trace, inner.cursor) <= now
            {
                Self::consume_opportunity(&mut inner, now, &mut to_deliver);
            }
            if inner.qdisc.len_packets() > 0 {
                // More work: rearm for the next (future) opportunity.
                inner.wakeup_armed = true;
                let at = Self::opportunity_time(&inner.trace, inner.cursor).max(now);
                let timer = inner.timer.clone();
                drop(inner);
                let me = self_rc.clone();
                timer.arm_at(sim, at, move |sim| TraceLink::on_opportunity(&me, sim));
            }
        }
        let next = self_rc.inner.borrow().next.clone();
        for pkt in to_deliver {
            next.deliver(sim, pkt);
        }
    }
}

/// The sink wrapper so `Rc<TraceLink>` can be used where a `SinkRef` is
/// needed while keeping `TraceLink::arm`'s `Rc<Self>` plumbing.
pub struct TraceLinkSink(pub Rc<TraceLink>);

impl PacketSink for TraceLinkSink {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let now = sim.now();
        let link = &self.0;
        let need_arm = {
            let mut inner = link.inner.borrow_mut();
            inner.stats.arrived += 1;
            let accepted = inner.qdisc.enqueue(now, pkt);
            if accepted == EnqueueResult::Dropped {
                inner.stats.dropped_by_queue += 1;
                false
            } else if !inner.wakeup_armed {
                // Find the first usable opportunity: opportunities are
                // use-it-or-lose-it, so skip everything before "now"
                // (sub-millisecond remainders round up — the trace has
                // millisecond granularity).
                let now_ms = now.as_nanos().div_ceil(1_000_000);
                inner.cursor = inner.trace.first_opportunity_at_or_after(now_ms);
                true
            } else {
                false
            }
        };
        if need_arm {
            TraceLink::arm(link, sim);
        }
    }
}

/// Handle to a constructed link shell.
pub struct LinkShell {
    /// The namespace applications run inside.
    pub inner_ns: Namespace,
    /// Child → parent direction.
    pub uplink: Rc<TraceLink>,
    /// Parent → child direction.
    pub downlink: Rc<TraceLink>,
}

/// Configuration for [`link_shell`].
pub struct LinkShellConfig {
    pub uplink_trace: Trace,
    pub downlink_trace: Trace,
    pub policy: OpportunityPolicy,
}

impl LinkShellConfig {
    /// Symmetric link from one trace.
    pub fn symmetric(trace: Trace) -> Self {
        LinkShellConfig {
            uplink_trace: trace.clone(),
            downlink_trace: trace,
            policy: OpportunityPolicy::default(),
        }
    }
}

/// Build a LinkShell under `parent` (the paper's
/// `mm-link <up.trace> <down.trace>`), with fresh qdiscs from `make_qdisc`.
pub fn link_shell(
    parent: &Namespace,
    name: &str,
    config: LinkShellConfig,
    make_qdisc: &dyn Fn() -> Box<dyn Qdisc>,
) -> LinkShell {
    let inner_ns = Namespace::root(name);
    let uplink = TraceLink::new(
        config.uplink_trace,
        make_qdisc(),
        config.policy,
        parent.router(),
    );
    let downlink = TraceLink::new(
        config.downlink_trace,
        make_qdisc(),
        config.policy,
        inner_ns.router(),
    );
    parent.attach_child(
        &inner_ns,
        Rc::new(TraceLinkSink(uplink.clone())),
        Rc::new(TraceLinkSink(downlink.clone())),
    );
    LinkShell {
        inner_ns,
        uplink,
        downlink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::DropTail;
    use bytes::Bytes;
    use mm_net::{FnSink, IpAddr, SocketAddr, TcpFlags, TcpSegment};
    use mm_trace::constant_rate;

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::from(vec![0; payload]),
            },
            corrupted: false,
        }
    }

    type Arrivals = Rc<RefCell<Vec<(u64, Timestamp)>>>;

    fn arrivals_sink() -> (Arrivals, SinkRef) {
        let v = Rc::new(RefCell::new(Vec::new()));
        let v2 = v.clone();
        let sink = FnSink::new(move |sim: &mut Simulator, p: Packet| {
            v2.borrow_mut().push((p.id, sim.now()));
        });
        (v, sink)
    }

    fn make_link(trace: Trace, next: SinkRef) -> (Rc<TraceLink>, SinkRef) {
        let link = TraceLink::new(
            trace,
            Box::new(DropTail::infinite()),
            OpportunityPolicy::ByteBudget,
            next,
        );
        let sink: SinkRef = Rc::new(TraceLinkSink(link.clone()));
        (link, sink)
    }

    #[test]
    fn delivery_follows_trace_opportunities() {
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        // Opportunities at 10, 20, 30 ms.
        let trace = Trace::from_timestamps(vec![10, 20, 30]).unwrap();
        let (_link, ingress) = make_link(trace, sink);
        let i2 = ingress.clone();
        sim.schedule_now(move |sim| {
            for i in 0..3 {
                i2.deliver(sim, pkt(i, 1460)); // full MTU each
            }
        });
        sim.run();
        let got = arrivals.borrow().clone();
        assert_eq!(
            got,
            vec![
                (0, Timestamp::from_millis(10)),
                (1, Timestamp::from_millis(20)),
                (2, Timestamp::from_millis(30)),
            ]
        );
    }

    #[test]
    fn missed_opportunities_are_lost() {
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        let trace = Trace::from_timestamps(vec![10, 20, 30]).unwrap();
        let (_link, ingress) = make_link(trace, sink);
        // Packet arrives at 15 ms: the 10 ms opportunity already passed.
        sim.schedule_at(Timestamp::from_millis(15), move |sim| {
            ingress.deliver(sim, pkt(0, 1460));
        });
        sim.run();
        assert_eq!(*arrivals.borrow(), vec![(0, Timestamp::from_millis(20))]);
    }

    #[test]
    fn small_packets_share_an_opportunity() {
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        let trace = Trace::from_timestamps(vec![10, 20]).unwrap();
        let (_link, ingress) = make_link(trace, sink);
        // Three 40-byte ACKs: all fit in one 1500-byte opportunity.
        sim.schedule_now(move |sim| {
            for i in 0..3 {
                ingress.deliver(sim, pkt(i, 0));
            }
        });
        sim.run();
        let got = arrivals.borrow().clone();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|&(_, t)| t == Timestamp::from_millis(10)));
    }

    #[test]
    fn packet_per_opportunity_policy() {
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        let trace = Trace::from_timestamps(vec![10, 20, 30]).unwrap();
        let link = TraceLink::new(
            trace,
            Box::new(DropTail::infinite()),
            OpportunityPolicy::PacketPerOpportunity,
            sink,
        );
        let ingress: SinkRef = Rc::new(TraceLinkSink(link));
        sim.schedule_now(move |sim| {
            for i in 0..3 {
                ingress.deliver(sim, pkt(i, 0)); // tiny, but one per opp
            }
        });
        sim.run();
        let times: Vec<u64> = arrivals
            .borrow()
            .iter()
            .map(|&(_, t)| t.as_millis())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn trace_wraps_for_long_runs() {
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        // One opportunity per 10 ms, period 10 ms.
        let trace = Trace::from_timestamps(vec![10]).unwrap();
        let (_link, ingress) = make_link(trace, sink);
        sim.schedule_now(move |sim| {
            for i in 0..5 {
                ingress.deliver(sim, pkt(i, 1460));
            }
        });
        sim.run();
        let times: Vec<u64> = arrivals
            .borrow()
            .iter()
            .map(|&(_, t)| t.as_millis())
            .collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn throughput_matches_trace_rate() {
        let mut sim = Simulator::new();
        let delivered_bytes = Rc::new(RefCell::new(0u64));
        let db = delivered_bytes.clone();
        let sink = FnSink::new(move |_: &mut Simulator, p: Packet| {
            *db.borrow_mut() += p.wire_size() as u64;
        });
        // 12 Mbit/s for 1 second.
        let trace = constant_rate(12.0, 1000);
        let (_link, ingress) = make_link(trace, sink);
        // Saturate: 3000 full packets (4.5 MB) — more than one second's
        // capacity (1.5 MB/s).
        sim.schedule_now(move |sim| {
            for i in 0..3000 {
                ingress.deliver(sim, pkt(i, 1460));
            }
        });
        sim.run_until(Timestamp::from_secs(1));
        let mbps = *delivered_bytes.borrow() as f64 * 8.0 / 1e6;
        assert!((mbps - 12.0).abs() < 0.5, "delivered {mbps} Mbit/s");
    }

    #[test]
    fn queue_drops_counted() {
        let mut sim = Simulator::new();
        let (_arrivals, sink) = arrivals_sink();
        let trace = Trace::from_timestamps(vec![100]).unwrap();
        let link = TraceLink::new(
            trace,
            Box::new(DropTail::new(crate::queue::QueueLimit::Packets(2))),
            OpportunityPolicy::ByteBudget,
            sink,
        );
        let ingress: SinkRef = Rc::new(TraceLinkSink(link.clone()));
        sim.schedule_now(move |sim| {
            for i in 0..5 {
                ingress.deliver(sim, pkt(i, 1460));
            }
        });
        sim.run();
        assert_eq!(link.stats().dropped_by_queue, 3);
        assert_eq!(link.stats().delivered, 2);
    }

    #[test]
    fn link_shell_wires_namespace() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let shell = link_shell(
            &parent,
            "linked",
            LinkShellConfig::symmetric(constant_rate(12.0, 1000)),
            &|| Box::new(DropTail::infinite()),
        );
        let (arrivals, sink) = arrivals_sink();
        parent.add_host(IpAddr::new(8, 8, 8, 8), sink);
        let mut p = pkt(1, 1460);
        p.dst = SocketAddr::new(IpAddr::new(8, 8, 8, 8), 80);
        shell.inner_ns.router().deliver(&mut sim, p);
        sim.run();
        assert_eq!(arrivals.borrow().len(), 1);
        assert_eq!(shell.uplink.stats().delivered, 1);
        assert_eq!(shell.downlink.stats().delivered, 0);
    }

    #[test]
    fn same_timestamp_opportunities_batch_into_one_wakeup() {
        // 1000 Mbit/s ≈ 83 MTU opportunities per millisecond: a burst of
        // full-size packets shares one millisecond tick. The dequeue loop
        // must serve the whole tick from a single timer wakeup, not one
        // event per opportunity.
        let mut sim = Simulator::new();
        let (arrivals, sink) = arrivals_sink();
        let trace = constant_rate(1000.0, 1000);
        let (link, ingress) = make_link(trace, sink);
        sim.schedule_now(move |sim| {
            for i in 0..80 {
                ingress.deliver(sim, pkt(i, 1460));
            }
        });
        sim.run();
        let got = arrivals.borrow().clone();
        // All 80 packets fit in the 83 opportunities of the 1 ms tick,
        // in order.
        assert_eq!(got.len(), 80);
        assert!(got.iter().all(|&(_, t)| t == Timestamp::from_millis(1)));
        assert_eq!(
            got.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
            (0..80).collect::<Vec<_>>()
        );
        assert_eq!(link.stats().opportunities_used, 80);
        // One enqueue event + ONE wakeup for the whole burst (the lazy
        // walker arms no further timers once the queue drains).
        assert!(
            sim.events_executed() <= 3,
            "burst took {} events; batching regressed",
            sim.events_executed()
        );
    }

    #[test]
    fn idle_link_schedules_no_events() {
        let mut sim = Simulator::new();
        let (_arrivals, sink) = arrivals_sink();
        let trace = constant_rate(1000.0, 1000); // 83k opportunities
        let (_link, _ingress) = make_link(trace, sink);
        sim.run();
        assert_eq!(
            sim.events_executed(),
            0,
            "lazy walker must not tick an idle link"
        );
    }
}
