//! LossShell: independent (Bernoulli) packet loss per direction, the
//! equivalent of mahimahi's `mm-loss <uplink|downlink> <rate>`.

use std::cell::RefCell;
use std::rc::Rc;

use mm_capture::{PacketEvent, PacketEventKind, TapHandle, TapPoint};
use mm_net::{Namespace, Packet, PacketSink, SinkRef};
use mm_sim::{RngStream, Simulator};

/// Counters for one loss direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossStats {
    pub seen: u64,
    pub dropped: u64,
}

/// One direction of a LossShell.
pub struct LossLink {
    p: f64,
    rng: RefCell<RngStream>,
    next: SinkRef,
    stats: RefCell<LossStats>,
    /// Per-packet observability hook ([`LossLink::set_tap`]); reports
    /// drops only (pass-through is synchronous and uneventful).
    tap: RefCell<Option<(TapHandle, TapPoint)>>,
}

impl LossLink {
    /// Drop each packet independently with probability `p`.
    pub fn new(p: f64, rng: RngStream, next: SinkRef) -> Rc<Self> {
        assert!((0.0..=1.0).contains(&p), "loss rate out of range: {p}");
        Rc::new(LossLink {
            p,
            rng: RefCell::new(rng),
            next,
            stats: RefCell::new(LossStats::default()),
            tap: RefCell::new(None),
        })
    }

    /// Attach a per-packet tap: each Bernoulli loss reports a
    /// [`PacketEventKind::Drop`] event. Taps observe only — the RNG
    /// stream and drop decisions are untouched.
    pub fn set_tap(&self, tap: TapHandle, point: TapPoint) {
        *self.tap.borrow_mut() = Some((tap, point));
    }

    /// Counters snapshot.
    pub fn stats(&self) -> LossStats {
        *self.stats.borrow()
    }
}

impl PacketSink for LossLink {
    fn deliver(&self, sim: &mut Simulator, pkt: Packet) {
        let drop = self.p > 0.0 && self.rng.borrow_mut().gen_bool(self.p);
        {
            let mut s = self.stats.borrow_mut();
            s.seen += 1;
            if drop {
                s.dropped += 1;
            }
        }
        if drop {
            if let Some((tap, point)) = &*self.tap.borrow() {
                tap.on_packet(&PacketEvent {
                    t_ns: sim.now().as_nanos(),
                    kind: PacketEventKind::Drop,
                    point: *point,
                    pkt_id: pkt.id,
                    size_bytes: pkt.wire_size() as u32,
                    sojourn_ns: 0,
                    flow: pkt.flow_key(),
                });
            }
        } else {
            self.next.deliver(sim, pkt);
        }
    }
}

/// Handle to a constructed loss shell.
pub struct LossShell {
    /// The namespace applications run inside.
    pub inner_ns: Namespace,
    pub uplink: Rc<LossLink>,
    pub downlink: Rc<LossLink>,
}

/// Build a LossShell under `parent` with independent loss rates per
/// direction. RNG streams are forked per direction from `rng` so uplink
/// and downlink decisions are independent.
pub fn loss_shell(
    parent: &Namespace,
    name: &str,
    uplink_loss: f64,
    downlink_loss: f64,
    rng: &RngStream,
) -> LossShell {
    let inner_ns = Namespace::root(name);
    let uplink = LossLink::new(uplink_loss, rng.fork("loss-up"), parent.router());
    let downlink = LossLink::new(downlink_loss, rng.fork("loss-down"), inner_ns.router());
    parent.attach_child(&inner_ns, uplink.clone(), downlink.clone());
    LossShell {
        inner_ns,
        uplink,
        downlink,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use mm_net::{FnSink, IpAddr, SocketAddr, TcpFlags, TcpSegment};

    fn pkt(id: u64) -> Packet {
        Packet {
            id,
            src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
            dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
            segment: TcpSegment {
                flags: TcpFlags::ACK,
                seq: 0,
                ack: 0,
                window: 0,
                sack: Default::default(),
                payload: Bytes::new(),
            },
            corrupted: false,
        }
    }

    #[test]
    fn loss_rate_approximates_p() {
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0u64));
        let d = delivered.clone();
        let sink = FnSink::new(move |_: &mut Simulator, _| *d.borrow_mut() += 1);
        let link = LossLink::new(0.25, RngStream::from_seed(5), sink);
        for i in 0..20_000 {
            link.deliver(&mut sim, pkt(i));
        }
        let s = link.stats();
        assert_eq!(s.seen, 20_000);
        let rate = s.dropped as f64 / s.seen as f64;
        assert!((rate - 0.25).abs() < 0.02, "loss rate {rate}");
        assert_eq!(*delivered.borrow(), s.seen - s.dropped);
    }

    #[test]
    fn zero_loss_passes_everything() {
        let mut sim = Simulator::new();
        let delivered = Rc::new(RefCell::new(0u64));
        let d = delivered.clone();
        let sink = FnSink::new(move |_: &mut Simulator, _| *d.borrow_mut() += 1);
        let link = LossLink::new(0.0, RngStream::from_seed(5), sink);
        for i in 0..100 {
            link.deliver(&mut sim, pkt(i));
        }
        assert_eq!(*delivered.borrow(), 100);
        assert_eq!(link.stats().dropped, 0);
    }

    #[test]
    fn shell_directions_independent() {
        let mut sim = Simulator::new();
        let parent = Namespace::root("parent");
        let rng = RngStream::from_seed(9);
        let shell = loss_shell(&parent, "lossy", 1.0, 0.0, &rng);
        // Outer host and inner host.
        let outer_got = Rc::new(RefCell::new(0u64));
        let og = outer_got.clone();
        parent.add_host(
            IpAddr::new(8, 8, 8, 8),
            FnSink::new(move |_: &mut Simulator, _| *og.borrow_mut() += 1),
        );
        let inner_got = Rc::new(RefCell::new(0u64));
        let ig = inner_got.clone();
        shell.inner_ns.add_host(
            IpAddr::new(100, 64, 0, 2),
            FnSink::new(move |_: &mut Simulator, _| *ig.borrow_mut() += 1),
        );
        // Uplink loses 100%: nothing reaches the outer host.
        for i in 0..10 {
            let mut p = pkt(i);
            p.dst = SocketAddr::new(IpAddr::new(8, 8, 8, 8), 80);
            shell.inner_ns.router().deliver(&mut sim, p);
        }
        // Downlink loses 0%: everything reaches the inner host.
        for i in 0..10 {
            let mut p = pkt(100 + i);
            p.dst = SocketAddr::new(IpAddr::new(100, 64, 0, 2), 80);
            parent.router().deliver(&mut sim, p);
        }
        sim.run();
        assert_eq!(*outer_got.borrow(), 0);
        assert_eq!(*inner_got.borrow(), 10);
        assert_eq!(shell.uplink.stats().dropped, 10);
        assert_eq!(shell.downlink.stats().dropped, 0);
    }
}
