//! Property tests on queue disciplines and shells: conservation (every
//! packet is delivered exactly once or dropped exactly once), FIFO order,
//! and capacity respect, for arbitrary workloads.

use bytes::Bytes;
use mm_net::{IpAddr, Packet, SocketAddr, TcpFlags, TcpSegment};
use mm_shells::{DropHead, DropTail, EnqueueResult, Qdisc, QueueLimit};
use mm_sim::Timestamp;
use proptest::prelude::*;

fn pkt(id: u64, payload: usize) -> Packet {
    Packet {
        id,
        src: SocketAddr::new(IpAddr::new(1, 1, 1, 1), 1),
        dst: SocketAddr::new(IpAddr::new(2, 2, 2, 2), 2),
        segment: TcpSegment {
            flags: TcpFlags::ACK,
            seq: 0,
            ack: 0,
            window: 0,
            sack: Default::default(),
            payload: Bytes::from(vec![0u8; payload]),
        },
        corrupted: false,
    }
}

/// An arbitrary interleaving of enqueues (with payload sizes) and
/// dequeues.
fn arb_ops() -> impl Strategy<Value = Vec<Option<usize>>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..1460).prop_map(Some), // enqueue of this size
            Just(None),                    // dequeue
        ],
        1..200,
    )
}

fn run_conservation(q: &mut dyn Qdisc, ops: &[Option<usize>]) -> (u64, u64, u64) {
    let mut enq = 0u64;
    let mut deq = 0u64;
    let mut t = 0u64;
    let mut next_id = 0u64;
    for op in ops {
        t += 1;
        match op {
            Some(size) => {
                if q.enqueue(Timestamp::from_millis(t), pkt(next_id, *size))
                    == EnqueueResult::Accepted
                {
                    enq += 1;
                }
                next_id += 1;
            }
            None => {
                if q.dequeue(Timestamp::from_millis(t)).is_some() {
                    deq += 1;
                }
            }
        }
    }
    // Drain.
    while q.dequeue(Timestamp::from_millis(t + 1)).is_some() {
        deq += 1;
    }
    (enq, deq, q.stats().dropped)
}

proptest! {
    #[test]
    fn droptail_conserves_packets(ops in arb_ops()) {
        let mut q = DropTail::infinite();
        let (enq, deq, dropped) = run_conservation(&mut q, &ops);
        prop_assert_eq!(enq, deq);
        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(q.len_packets(), 0);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    #[test]
    fn bounded_droptail_conserves(ops in arb_ops(), cap in 1usize..20) {
        let mut q = DropTail::new(QueueLimit::Packets(cap));
        let offered = ops.iter().filter(|o| o.is_some()).count() as u64;
        let (enq, deq, dropped) = run_conservation(&mut q, &ops);
        prop_assert_eq!(enq, deq);
        prop_assert_eq!(enq + dropped, offered);
    }

    #[test]
    fn drophead_conserves(ops in arb_ops(), cap in 1usize..20) {
        let mut q = DropHead::new(QueueLimit::Packets(cap));
        let offered = ops.iter().filter(|o| o.is_some()).count() as u64;
        let (_enq, deq, dropped) = run_conservation(&mut q, &ops);
        // Drophead accepts everything; victims are dropped from the head.
        prop_assert_eq!(deq + dropped, offered);
    }

    #[test]
    fn droptail_is_fifo(sizes in prop::collection::vec(0usize..1460, 1..50)) {
        let mut q = DropTail::infinite();
        for (i, &s) in sizes.iter().enumerate() {
            q.enqueue(Timestamp::ZERO, pkt(i as u64, s));
        }
        let mut last = None;
        while let Some(p) = q.dequeue(Timestamp::from_millis(1)) {
            if let Some(prev) = last {
                prop_assert!(p.id > prev);
            }
            last = Some(p.id);
        }
    }

    #[test]
    fn byte_limit_never_exceeded(ops in arb_ops(), cap_kb in 2usize..40) {
        let cap = cap_kb * 1024;
        let mut q = DropTail::new(QueueLimit::Bytes(cap));
        let mut t = 0u64;
        for (i, op) in ops.iter().enumerate() {
            t += 1;
            match op {
                Some(size) => {
                    q.enqueue(Timestamp::from_millis(t), pkt(i as u64, *size));
                    prop_assert!(q.len_bytes() <= cap);
                }
                None => {
                    q.dequeue(Timestamp::from_millis(t));
                }
            }
        }
    }
}
