//! End-to-end behavior of the rate-control subsystem over emulated
//! links: BBR converges to the bottleneck rate, BBR holds a far smaller
//! standing queue than a loss-based sender in a deep buffer, and pacing
//! under a classic controller trades nothing away while flattening the
//! queue — the mechanisms the figbbr experiment measures at page-load
//! scale.

use bytes::Bytes;
use mm_net::{
    CcAlgorithm, Host, IpAddr, Listener, Namespace, PacketIdGen, RecoveryTier, SocketAddr,
    SocketApp, SocketEvent, TcpConfig, TcpHandle,
};
use mm_shells::{DropTail, QueueLimit, ShellLayer, ShellStack};
use mm_sim::{SimDuration, Simulator, Timestamp};
use mm_trace::constant_rate;
use std::cell::RefCell;
use std::rc::Rc;

struct Collect {
    bytes: Rc<RefCell<u64>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: u64,
}
impl SocketApp for Collect {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        if let SocketEvent::Data(b) = ev {
            let mut total = self.bytes.borrow_mut();
            *total += b.len() as u64;
            if *total >= self.expect {
                *self.done_at.borrow_mut() = Some(sim.now());
            }
        }
    }
}

struct Accept {
    bytes: Rc<RefCell<u64>>,
    done_at: Rc<RefCell<Option<Timestamp>>>,
    expect: u64,
}
impl Listener for Accept {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        Rc::new(Collect {
            bytes: self.bytes.clone(),
            done_at: self.done_at.clone(),
            expect: self.expect,
        })
    }
}

struct SendOnConnect {
    data: RefCell<Option<Bytes>>,
}
impl SocketApp for SendOnConnect {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        if matches!(ev, SocketEvent::Connected) {
            if let Some(d) = self.data.borrow_mut().take() {
                h.send(sim, d);
            }
        }
    }
}

struct World {
    sim: Simulator,
    stack: ShellStack,
    received: Rc<RefCell<u64>>,
    client: TcpHandle,
}

/// A bulk upload through `mm-delay <one_way> mm-link <rate>` with the
/// given uplink queue: client inside the stack, server at the root.
fn bulk_upload(
    config: TcpConfig,
    total: usize,
    mbps: f64,
    one_way: SimDuration,
    queue: QueueLimit,
) -> World {
    let mut sim = Simulator::new();
    let root = Namespace::root("root");
    let ids = PacketIdGen::new();
    let server = Host::new_in(IpAddr::new(8, 8, 8, 8), ids.clone(), &root);
    server.set_tcp_config(config.clone());
    let received = Rc::new(RefCell::new(0u64));
    let done_at = Rc::new(RefCell::new(None));
    server.listen(
        80,
        Rc::new(Accept {
            bytes: received.clone(),
            done_at,
            expect: total as u64,
        }),
    );
    let stack = ShellStack::new(&root)
        .with_shell_overhead(SimDuration::ZERO)
        .delay(one_way)
        .link(constant_rate(mbps, 1000), &move || {
            Box::new(DropTail::new(queue))
        });
    let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &stack.innermost());
    client.set_tcp_config(config);
    let handle = client.connect(
        &mut sim,
        SocketAddr::new(server.ip(), 80),
        Rc::new(SendOnConnect {
            data: RefCell::new(Some(Bytes::from(vec![7u8; total]))),
        }),
    );
    World {
        sim,
        stack,
        received,
        client: handle,
    }
}

fn uplink_max_backlog(stack: &ShellStack) -> usize {
    stack
        .layers()
        .iter()
        .find_map(|l| match l {
            ShellLayer::Link(s) => Some(s.uplink.qdisc_stats().max_backlog_packets),
            _ => None,
        })
        .expect("stack has a link layer")
}

fn bbr_config() -> TcpConfig {
    TcpConfig::builder()
        .cc(CcAlgorithm::Bbr)
        .recovery(RecoveryTier::RackTlp)
        .build()
}

/// The issue's convergence criterion: on a clean 14 Mbit/s / 120 ms RTT
/// link, BBR reaches ≥ 90% of the link rate within 10 s (measured over
/// the 2 s → 10 s window, past startup).
#[test]
fn bbr_converges_to_link_rate() {
    let mut w = bulk_upload(
        bbr_config(),
        25 << 20, // more than 10 s of capacity
        14.0,
        SimDuration::from_millis(60),
        QueueLimit::Infinite,
    );
    w.sim.run_until(Timestamp::from_secs(2));
    let at_2s = *w.received.borrow();
    w.sim.run_until(Timestamp::from_secs(10));
    let delta = *w.received.borrow() - at_2s;
    // 90% of the 14 Mbit/s *wire* rate over 8 s (payload goodput is
    // ~97.3% of wire, so this demands ≥ 92.5% utilization).
    let floor = (0.9 * 14e6 / 8.0 * 8.0) as u64;
    assert!(
        delta >= floor,
        "BBR delivered {delta} B in 8 s; need ≥ {floor}"
    );
    // And the model converged to the truth: bandwidth estimate within
    // 15% of the link, min-RTT within a few ms of the propagation RTT.
    let bw = w.client.delivery_rate().expect("bw estimate exists");
    assert!(
        (bw as f64) > 0.85 * 14e6 / 8.0 && (bw as f64) < 1.15 * 14e6 / 8.0,
        "bw estimate {bw} B/s vs link 1.75e6"
    );
    let min_rtt = w.client.min_rtt_estimate().expect("min rtt exists");
    assert!(
        min_rtt >= SimDuration::from_millis(120) && min_rtt <= SimDuration::from_millis(135),
        "min rtt {min_rtt}"
    );
    assert!(
        w.client.stats().pacing_waits > 0,
        "the pacer must actually have spaced transmissions"
    );
}

/// The bufferbloat criterion: under a deep droptail buffer (256
/// packets), a loss-based sender fills the whole queue before it backs
/// off; BBR's standing queue stays bounded by its inflight cap
/// (cwnd_gain × BDP), far below the buffer.
#[test]
fn bbr_standing_queue_below_reno_in_deep_buffer() {
    let reno = TcpConfig::builder()
        .cc(CcAlgorithm::Reno)
        .recovery(RecoveryTier::RackTlp)
        .build();
    let run = |config: TcpConfig| {
        let mut w = bulk_upload(
            config,
            12 << 20,
            10.0,
            SimDuration::from_millis(20),
            QueueLimit::Packets(256),
        );
        w.sim.run_until(Timestamp::from_secs(5));
        let received = *w.received.borrow();
        (uplink_max_backlog(&w.stack), received)
    };
    let (reno_queue, reno_bytes) = run(reno);
    let (bbr_queue, bbr_bytes) = run(bbr_config());
    assert_eq!(
        reno_queue, 256,
        "a loss-based sender must fill the deep buffer"
    );
    assert!(
        bbr_queue < reno_queue / 2,
        "BBR standing queue {bbr_queue} vs Reno {reno_queue}"
    );
    // The short queue must not cost meaningful throughput.
    assert!(
        bbr_bytes as f64 >= reno_bytes as f64 * 0.9,
        "BBR delivered {bbr_bytes} vs Reno {reno_bytes}"
    );
}

/// `TcpConfig::pacing` under the classic loss-based controllers (the
/// "available under all CC algorithms" contract): the pacer genuinely
/// engages, rate samples flow, every byte still arrives through a lossy
/// shallow buffer, and the completion-time cost stays bounded. Pacing
/// alone does not *speed up* AIMD — spreading the bursts mostly
/// re-times which packets a droptail queue drops — so this pins
/// mechanism and correctness, not a speedup; the win from a paced
/// model-based sender is BBR's, measured above and in figbbr.
#[test]
fn pacing_engages_and_preserves_correctness_under_loss_based_cc() {
    for cc in [CcAlgorithm::Reno, CcAlgorithm::Cubic] {
        let total = 2 << 20;
        let run = |pacing: bool, queue: QueueLimit| {
            let config = TcpConfig::builder()
                .cc(cc)
                .recovery(RecoveryTier::RackTlp)
                .pacing(pacing)
                .build();
            let mut w = bulk_upload(config, total, 10.0, SimDuration::from_millis(20), queue);
            w.sim.run();
            assert_eq!(
                *w.received.borrow(),
                total as u64,
                "paced={pacing} transfer completes intact under {cc:?}"
            );
            (w.sim.now(), w.client.stats())
        };
        // Clean link: pacing must engage and cost (nearly) nothing.
        let (unpaced_done, unpaced_stats) = run(false, QueueLimit::Infinite);
        let (paced_done, paced_stats) = run(true, QueueLimit::Infinite);
        assert_eq!(unpaced_stats.pacing_waits, 0, "pacing off is inert");
        assert!(paced_stats.pacing_waits > 0, "{cc:?}: pacing engaged");
        assert!(paced_stats.rate_samples > 0, "{cc:?}: rate samples flowed");
        let slowdown = paced_done.as_secs_f64() / unpaced_done.as_secs_f64();
        assert!(
            slowdown < 1.3,
            "{cc:?}: pacing cost too much: {unpaced_done} -> {paced_done}"
        );
        // Shallow lossy buffer: correctness only. Loss-based AIMD is
        // equally RTO-prone paced or not in this regime (verified while
        // writing this test — both hit multiple timeouts); which loss
        // pattern it draws is luck, so completion time is not pinned.
        run(true, QueueLimit::Packets(32));
    }
}
