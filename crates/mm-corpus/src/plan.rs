//! Site plans: the structural skeleton of a synthetic recorded site.
//!
//! A [`SitePlan`] captures everything that determines load behaviour —
//! origins, objects, sizes, types, and the reference graph — without the
//! body bytes. Plans are cheap (the whole 500-site corpus fits in memory),
//! and are materialized into full [`mm_record::StoredSite`]s one at a time
//! by [`crate::materialize`].
//!
//! Calibration targets from the paper (§4, "Multi-origin Web pages"):
//! across the Alexa US Top 500, the median number of physical servers per
//! site is 20, the 95th percentile is 51, and exactly 9 pages use a single
//! server.

use mm_sim::dist::{Distribution, LogNormal, Weighted};
use mm_sim::RngStream;

/// Resource types with distinct size distributions and reference behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Html,
    Css,
    Js,
    Image,
    Font,
    Other,
}

impl ObjectKind {
    /// The content type served for this kind.
    pub fn content_type(self) -> &'static str {
        match self {
            ObjectKind::Html => "text/html; charset=utf-8",
            ObjectKind::Css => "text/css",
            ObjectKind::Js => "application/javascript",
            ObjectKind::Image => "image/jpeg",
            ObjectKind::Font => "font/woff2",
            ObjectKind::Other => "application/octet-stream",
        }
    }

    /// Can bodies of this kind reference further resources?
    pub fn scannable(self) -> bool {
        matches!(self, ObjectKind::Html | ObjectKind::Css | ObjectKind::Js)
    }

    /// File extension used in generated paths.
    pub fn ext(self) -> &'static str {
        match self {
            ObjectKind::Html => "html",
            ObjectKind::Css => "css",
            ObjectKind::Js => "js",
            ObjectKind::Image => "jpg",
            ObjectKind::Font => "woff2",
            ObjectKind::Other => "bin",
        }
    }
}

/// One planned object.
#[derive(Debug, Clone)]
pub struct PlannedObject {
    /// Index of the origin serving this object (into `SitePlan::origins`).
    pub origin_idx: usize,
    pub kind: ObjectKind,
    /// Body size in bytes.
    pub size: usize,
    /// Path (unique per site), e.g. `/asset/17.jpg`.
    pub path: String,
    /// Indices of objects this object's body references (its children in
    /// the discovery DAG).
    pub references: Vec<usize>,
}

/// A planned origin server.
#[derive(Debug, Clone, Copy)]
pub struct PlannedOrigin {
    /// Server IP, allocated deterministically per site.
    pub ip: mm_net::IpAddr,
    pub port: u16,
}

/// The structural plan for one site.
#[derive(Debug, Clone)]
pub struct SitePlan {
    pub name: String,
    pub origins: Vec<PlannedOrigin>,
    /// Objects; index 0 is always the root document.
    pub objects: Vec<PlannedObject>,
}

impl SitePlan {
    /// Number of distinct server IPs (the paper's statistic).
    pub fn server_count(&self) -> usize {
        let mut ips: Vec<_> = self.origins.iter().map(|o| o.ip).collect();
        ips.sort_unstable();
        ips.dedup();
        ips.len()
    }

    /// Total planned body bytes (page weight).
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.size as u64).sum()
    }

    /// The root document's absolute URL.
    pub fn root_url(&self) -> String {
        let o = self.origins[self.objects[0].origin_idx];
        format!("http://{}:{}{}", o.ip, o.port, self.objects[0].path)
    }

    /// Absolute URL of object `idx`.
    pub fn url_of(&self, idx: usize) -> String {
        let obj = &self.objects[idx];
        let o = self.origins[obj.origin_idx];
        format!("http://{}:{}{}", o.ip, o.port, obj.path)
    }
}

/// Tunable knobs for site generation.
#[derive(Debug, Clone)]
pub struct SiteParams {
    /// Exact number of distinct servers, or `None` to draw from the
    /// calibrated distribution.
    pub servers: Option<usize>,
    /// Median of the object-count distribution (excluding the root).
    pub median_objects: f64,
    /// Lognormal sigma of the object count (small for presets that pin a
    /// page's size).
    pub objects_sigma: f64,
    /// Median object size in bytes (kind-specific scaling applies).
    pub median_object_bytes: f64,
    /// Probability an extra origin beyond the first is HTTPS (port 443).
    pub https_prob: f64,
    /// Probability a scannable non-root object references children
    /// (dependency depth beyond the root).
    pub nested_ref_prob: f64,
}

impl Default for SiteParams {
    fn default() -> Self {
        SiteParams {
            servers: None,
            median_objects: 55.0,
            objects_sigma: 0.45,
            median_object_bytes: 14_000.0,
            https_prob: 0.3,
            nested_ref_prob: 0.25,
        }
    }
}

/// Draw a server count from the calibrated Alexa-like distribution
/// (lognormal with median 20; σ chosen so the 95th percentile ≈ 51).
pub fn draw_server_count(rng: &mut RngStream) -> usize {
    // q95/median = exp(1.645 σ) = 51/20 ⇒ σ ≈ 0.5688.
    let d = LogNormal::with_median(20.0, 0.5688);
    (d.sample(rng).round() as usize).clamp(2, 120)
}

/// Generate the plan for one site. `site_idx` determines the IP block so
/// corpus-wide addresses never collide.
pub fn plan_site(site_idx: usize, params: &SiteParams, rng: &mut RngStream) -> SitePlan {
    let n_servers = params.servers.unwrap_or_else(|| draw_server_count(rng));
    assert!(n_servers >= 1);

    // Allocate one IP per server inside this site's /20-equivalent block.
    let base: u32 = 0x1700_0000 + (site_idx as u32) * 4096; // 23.0.0.0/8 pool
    let mut origins: Vec<PlannedOrigin> = Vec::new();
    let mut server_origin: Vec<usize> = Vec::new(); // server -> origin idx
    for s in 0..n_servers {
        let ip = mm_net::IpAddr(base + s as u32 + 1);
        let https = s > 0 && rng.gen_bool(params.https_prob);
        server_origin.push(origins.len());
        origins.push(PlannedOrigin {
            ip,
            port: if https { 443 } else { 80 },
        });
    }

    // Object count: lognormal, at least 3 (root + a couple of assets)
    // unless single-server microsites.
    let count_dist = LogNormal::with_median(params.median_objects, params.objects_sigma);
    let n_objects = (count_dist.sample(rng).round() as usize).clamp(3, 400);

    // Object kind mix, roughly HTTP-Archive-2014: images dominate.
    let kind_dist = Weighted::new(vec![
        (ObjectKind::Image, 0.56),
        (ObjectKind::Js, 0.18),
        (ObjectKind::Css, 0.08),
        (ObjectKind::Font, 0.05),
        (ObjectKind::Html, 0.04),
        (ObjectKind::Other, 0.09),
    ]);

    // Server popularity: origin 0 (the root's server) and a couple of
    // "CDN" servers carry more objects; the tail carries one or two each
    // (trackers, beacons). Weights ~ Zipf.
    let server_weights: Vec<(usize, f64)> = (0..n_servers)
        .map(|s| (s, 1.0 / (1.0 + s as f64).powf(0.8)))
        .collect();
    let server_pick = Weighted::new(server_weights);

    let mut objects: Vec<PlannedObject> = Vec::new();
    // Root document.
    let root_size = LogNormal::with_median(45_000.0, 0.6).sample(rng).round() as usize;
    objects.push(PlannedObject {
        origin_idx: server_origin[0],
        kind: ObjectKind::Html,
        size: root_size.clamp(5_000, 400_000),
        path: "/".to_string(),
        references: Vec::new(),
    });

    for i in 0..n_objects {
        let kind = kind_dist.sample(rng);
        let median = match kind {
            ObjectKind::Html => params.median_object_bytes * 1.5,
            ObjectKind::Css => params.median_object_bytes * 1.2,
            ObjectKind::Js => params.median_object_bytes * 1.8,
            ObjectKind::Image => params.median_object_bytes,
            ObjectKind::Font => params.median_object_bytes * 1.6,
            ObjectKind::Other => params.median_object_bytes * 0.5,
        };
        let size = (LogNormal::with_median(median, 0.9).sample(rng).round() as usize)
            .clamp(200, 2_000_000);
        let server = server_pick.sample(rng);
        objects.push(PlannedObject {
            origin_idx: server_origin[server],
            kind,
            size,
            path: format!("/asset/{i}.{}", kind.ext()),
            references: Vec::new(),
        });
    }

    // Ensure every server hosts at least one object so the realized site
    // has exactly n_servers distinct IPs.
    for (s, &origin_idx) in server_origin.iter().enumerate() {
        let hosted = objects.iter().any(|o| o.origin_idx == origin_idx);
        if !hosted {
            objects.push(PlannedObject {
                origin_idx,
                kind: ObjectKind::Image,
                size: 800, // tracking-pixel-sized
                path: format!("/beacon/{s}.gif"),
                references: Vec::new(),
            });
        }
    }

    // Wire the discovery DAG: the root references a first wave; scannable
    // non-root objects may reference a second wave; leftovers attach to
    // the root (browsers discover most resources in the main document).
    let n = objects.len();
    let mut assigned = vec![false; n];
    assigned[0] = true;
    // Scannable candidates that could parent second-wave objects.
    let mut parents: Vec<usize> = Vec::new();
    // First wave: ~70% of objects hang off the root.
    for idx in 1..n {
        if rng.gen_bool(0.7) {
            objects[0].references.push(idx);
            assigned[idx] = true;
            if objects[idx].kind.scannable() && rng.gen_bool(params.nested_ref_prob) {
                parents.push(idx);
            }
        }
    }
    // Second wave: remaining objects attach to a scannable parent when one
    // exists, otherwise to the root.
    for (idx, done) in assigned.iter_mut().enumerate().take(n).skip(1) {
        if *done {
            continue;
        }
        if parents.is_empty() {
            objects[0].references.push(idx);
        } else {
            let p = *rng.choose(&parents);
            objects[p].references.push(idx);
        }
        *done = true;
    }

    SitePlan {
        name: format!("site-{site_idx}.example"),
        origins,
        objects,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::from_seed(42)
    }

    #[test]
    fn plan_has_root_and_objects() {
        let p = plan_site(0, &SiteParams::default(), &mut rng());
        assert_eq!(p.objects[0].path, "/");
        assert!(p.objects.len() > 3);
        assert!(p.server_count() >= 2);
        assert!(p.root_url().starts_with("http://23."));
    }

    #[test]
    fn forced_server_count_respected() {
        let params = SiteParams {
            servers: Some(1),
            ..SiteParams::default()
        };
        let p = plan_site(7, &params, &mut rng());
        assert_eq!(p.server_count(), 1);
        let params = SiteParams {
            servers: Some(33),
            ..SiteParams::default()
        };
        let p = plan_site(8, &params, &mut rng());
        assert_eq!(p.server_count(), 33);
    }

    #[test]
    fn every_origin_hosts_something() {
        let p = plan_site(3, &SiteParams::default(), &mut rng());
        for (i, _o) in p.origins.iter().enumerate() {
            assert!(
                p.objects.iter().any(|obj| obj.origin_idx == i),
                "origin {i} hosts nothing"
            );
        }
    }

    #[test]
    fn dag_covers_all_objects_without_cycles() {
        let p = plan_site(5, &SiteParams::default(), &mut rng());
        // Walk from the root; every object must be reachable exactly once.
        let mut seen = vec![false; p.objects.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut visits = 0;
        while let Some(idx) = stack.pop() {
            visits += 1;
            assert!(visits <= p.objects.len(), "cycle detected");
            for &child in &p.objects[idx].references {
                assert!(!seen[child], "object {child} referenced twice");
                seen[child] = true;
                stack.push(child);
            }
        }
        assert!(seen.iter().all(|&s| s), "unreachable objects");
    }

    #[test]
    fn server_count_distribution_calibrated() {
        let mut rng = rng();
        let mut counts: Vec<usize> = (0..2000).map(|_| draw_server_count(&mut rng)).collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let p95 = counts[(counts.len() as f64 * 0.95) as usize];
        assert!((18..=22).contains(&median), "median {median}");
        assert!((44..=58).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn ip_blocks_disjoint_across_sites() {
        let a = plan_site(0, &SiteParams::default(), &mut rng());
        let b = plan_site(1, &SiteParams::default(), &mut RngStream::from_seed(43));
        let ips_a: std::collections::HashSet<_> = a.origins.iter().map(|o| o.ip).collect();
        for o in &b.origins {
            assert!(!ips_a.contains(&o.ip));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let p1 = plan_site(9, &SiteParams::default(), &mut RngStream::from_seed(1));
        let p2 = plan_site(9, &SiteParams::default(), &mut RngStream::from_seed(1));
        assert_eq!(p1.total_bytes(), p2.total_bytes());
        assert_eq!(p1.server_count(), p2.server_count());
        assert_eq!(p1.objects.len(), p2.objects.len());
    }
}
