//! # mm-corpus — the synthetic Alexa-like corpus
//!
//! The paper's experiments run over a recorded corpus of the Alexa US Top
//! 500 (https://github.com/ravinet/sites), which is not redistributable
//! here. This crate synthesizes a 500-site corpus calibrated to every
//! corpus-level statistic the paper reports (median 20 servers/site, 95th
//! percentile 51, exactly 9 single-server pages) plus presets for the
//! specific pages it measures (CNBC, wikiHow, nytimes).
//!
//! Structure ([`plan`]) is cheap and generated for the whole corpus at
//! once; bodies ([`materialize`]) are rendered per site on demand.

pub mod corpus;
pub mod materialize;
pub mod plan;
pub mod presets;

pub use corpus::{generate_plans, server_distribution, CorpusConfig, ServerDistribution};
pub use materialize::materialize;
pub use plan::{
    draw_server_count, plan_site, ObjectKind, PlannedObject, PlannedOrigin, SiteParams, SitePlan,
};
pub use presets::{cnbc_like, nytimes_like, wikihow_like};
