//! The 500-site corpus and its paper-calibrated statistics.

use mm_sim::RngStream;

use crate::plan::{plan_site, SiteParams, SitePlan};

/// Corpus-level configuration.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of sites (the paper records the Alexa US Top 500).
    pub n_sites: usize,
    /// Master seed; everything else forks from it.
    pub seed: u64,
    /// How many sites are forced single-server (the paper reports exactly
    /// 9 such pages in the Alexa US Top 500).
    pub single_server_sites: usize,
    /// Base parameters for every site.
    pub site_params: SiteParams,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_sites: 500,
            seed: 2014,
            single_server_sites: 9,
            site_params: SiteParams::default(),
        }
    }
}

/// Generate all site plans (cheap: no bodies).
///
/// Deterministic per (seed, n_sites): each site forks its own RNG stream,
/// so regenerating any single site standalone yields the identical plan.
pub fn generate_plans(config: &CorpusConfig) -> Vec<SitePlan> {
    let root = RngStream::from_seed(config.seed);
    // Spread the forced single-server sites across the corpus
    // deterministically.
    let single_every = if config.single_server_sites > 0 {
        config.n_sites / config.single_server_sites.max(1)
    } else {
        usize::MAX
    };
    (0..config.n_sites)
        .map(|i| {
            let mut rng = root.fork_indexed("site", i as u64);
            let forced_single = config.single_server_sites > 0
                && i % single_every.max(1) == 7 % single_every.max(1)
                && i / single_every.max(1) < config.single_server_sites;
            let params = if forced_single {
                SiteParams {
                    servers: Some(1),
                    median_objects: 12.0,
                    ..config.site_params.clone()
                }
            } else {
                config.site_params.clone()
            };
            plan_site(i, &params, &mut rng)
        })
        .collect()
}

/// Distribution summary of servers-per-site (§4's statistic; experiment
/// E5 regenerates the paper's numbers from this).
#[derive(Debug, Clone)]
pub struct ServerDistribution {
    pub median: usize,
    pub p95: usize,
    pub single_server_sites: usize,
    pub max: usize,
    pub counts: Vec<usize>,
}

/// Compute the servers-per-site distribution across plans.
pub fn server_distribution(plans: &[SitePlan]) -> ServerDistribution {
    assert!(!plans.is_empty());
    let mut counts: Vec<usize> = plans.iter().map(|p| p.server_count()).collect();
    let raw = counts.clone();
    counts.sort_unstable();
    let n = counts.len();
    ServerDistribution {
        median: counts[(n - 1) / 2],
        p95: counts[(((n as f64) * 0.95).ceil() as usize).min(n) - 1],
        single_server_sites: counts.iter().filter(|&&c| c == 1).count(),
        max: *counts.last().unwrap(),
        counts: raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_matches_paper_statistics() {
        let plans = generate_plans(&CorpusConfig::default());
        assert_eq!(plans.len(), 500);
        let dist = server_distribution(&plans);
        // Paper: median 20, p95 51, exactly 9 single-server pages.
        assert!(
            (17..=23).contains(&dist.median),
            "median {} outside calibration band",
            dist.median
        );
        assert!(
            (43..=60).contains(&dist.p95),
            "p95 {} outside calibration band",
            dist.p95
        );
        assert_eq!(dist.single_server_sites, 9);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_plans(&CorpusConfig::default());
        let b = generate_plans(&CorpusConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.server_count(), y.server_count());
            assert_eq!(x.total_bytes(), y.total_bytes());
        }
    }

    #[test]
    fn different_seed_different_corpus() {
        let a = generate_plans(&CorpusConfig::default());
        let b = generate_plans(&CorpusConfig {
            seed: 99,
            ..CorpusConfig::default()
        });
        let same = a
            .iter()
            .zip(&b)
            .filter(|(x, y)| x.total_bytes() == y.total_bytes())
            .count();
        assert!(same < 10, "{same} identical sites across seeds");
    }

    #[test]
    fn small_corpus_works() {
        let plans = generate_plans(&CorpusConfig {
            n_sites: 20,
            single_server_sites: 2,
            ..CorpusConfig::default()
        });
        assert_eq!(plans.len(), 20);
        let dist = server_distribution(&plans);
        assert_eq!(dist.single_server_sites, 2);
    }

    #[test]
    fn page_weights_plausible() {
        // 2014-era pages: hundreds of KB to a few MB.
        let plans = generate_plans(&CorpusConfig {
            n_sites: 50,
            ..CorpusConfig::default()
        });
        let mut weights: Vec<u64> = plans.iter().map(|p| p.total_bytes()).collect();
        weights.sort_unstable();
        let median = weights[25];
        assert!(
            (300_000..5_000_000).contains(&median),
            "median page weight {median}"
        );
    }
}
