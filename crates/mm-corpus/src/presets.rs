//! Named site presets mirroring the specific pages the paper measures:
//! www.cnbc.com and www.wikihow.com (Table 1) and www.nytimes.com
//! (Figure 3). Structure parameters approximate 2014-era captures of those
//! pages: CNBC was a heavy, many-origin news page; wikiHow a lighter
//! article page; nytimes a large multi-origin news front page.

use mm_sim::RngStream;

use crate::plan::{plan_site, SiteParams, SitePlan};

/// Reserved site indices so preset IP blocks never collide with the
/// numbered corpus (which uses indices 0..n_sites).
const CNBC_IDX: usize = 900;
const WIKIHOW_IDX: usize = 901;
const NYTIMES_IDX: usize = 902;

/// A CNBC-like page: many origins, heavy scripts, ~7.5 s PLT in the
/// paper's Table 1 configuration.
pub fn cnbc_like(seed: u64) -> SitePlan {
    let mut rng = RngStream::from_seed(seed).fork("cnbc");
    let params = SiteParams {
        servers: Some(38),
        median_objects: 310.0,
        objects_sigma: 0.06,
        median_object_bytes: 16_000.0,
        https_prob: 0.25,
        nested_ref_prob: 0.35,
    };
    let mut plan = plan_site(CNBC_IDX, &params, &mut rng);
    plan.name = "www.cnbc.com".to_string();
    plan
}

/// A wikiHow-like page: moderate size, fewer origins, ~4.8 s PLT in the
/// paper's Table 1 configuration.
pub fn wikihow_like(seed: u64) -> SitePlan {
    let mut rng = RngStream::from_seed(seed).fork("wikihow");
    let params = SiteParams {
        servers: Some(12),
        median_objects: 190.0,
        objects_sigma: 0.06,
        median_object_bytes: 15_000.0,
        https_prob: 0.2,
        nested_ref_prob: 0.3,
    };
    let mut plan = plan_site(WIKIHOW_IDX, &params, &mut rng);
    plan.name = "www.wikihow.com".to_string();
    plan
}

/// An nytimes-like front page: ~60 origins, large page weight (Figure 3's
/// subject).
pub fn nytimes_like(seed: u64) -> SitePlan {
    let mut rng = RngStream::from_seed(seed).fork("nytimes");
    let params = SiteParams {
        servers: Some(60),
        median_objects: 160.0,
        objects_sigma: 0.06,
        median_object_bytes: 14_000.0,
        https_prob: 0.2,
        nested_ref_prob: 0.3,
    };
    let mut plan = plan_site(NYTIMES_IDX, &params, &mut rng);
    plan.name = "www.nytimes.com".to_string();
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_shape() {
        let c = cnbc_like(1);
        let w = wikihow_like(1);
        let n = nytimes_like(1);
        assert_eq!(c.server_count(), 38);
        assert_eq!(w.server_count(), 12);
        assert_eq!(n.server_count(), 60);
        assert!(c.objects.len() > w.objects.len());
        assert!(n.server_count() > c.server_count());
        assert_eq!(c.name, "www.cnbc.com");
    }

    #[test]
    fn presets_deterministic_per_seed() {
        assert_eq!(cnbc_like(5).total_bytes(), cnbc_like(5).total_bytes());
        assert_ne!(cnbc_like(5).total_bytes(), cnbc_like(6).total_bytes());
    }

    #[test]
    fn preset_ips_disjoint_from_corpus() {
        let corpus = crate::corpus::generate_plans(&crate::corpus::CorpusConfig {
            n_sites: 500,
            ..Default::default()
        });
        let preset_ips: std::collections::HashSet<_> =
            nytimes_like(1).origins.iter().map(|o| o.ip).collect();
        for plan in &corpus {
            for o in &plan.origins {
                assert!(!preset_ips.contains(&o.ip));
            }
        }
    }
}
