//! Materialization: render a [`SitePlan`] into a full [`StoredSite`] with
//! real HTTP bodies whose embedded URLs realize the planned reference DAG.

use bytes::{BufMut, Bytes, BytesMut};
use mm_http::{HeaderMap, Request, Response, Version};
use mm_net::SocketAddr;
use mm_record::{RequestResponsePair, Scheme, StoredSite};

use crate::plan::{ObjectKind, SitePlan};

/// Render one object's body: the URLs of its referenced children embedded
/// in filler up to the planned size.
fn render_body(plan: &SitePlan, idx: usize) -> Bytes {
    let obj = &plan.objects[idx];
    let mut out = BytesMut::with_capacity(obj.size + 64);
    match obj.kind {
        ObjectKind::Html => out.put_slice(b"<!doctype html><html>\n"),
        ObjectKind::Css => out.put_slice(b"/* generated stylesheet */\n"),
        ObjectKind::Js => out.put_slice(b"// generated script\n"),
        _ => {}
    }
    for &child in &obj.references {
        let url = plan.url_of(child);
        match obj.kind {
            ObjectKind::Html => {
                out.put_slice(format!("<link href=\"{url}\">\n").as_bytes());
            }
            ObjectKind::Css => {
                out.put_slice(format!("@import url({url});\n").as_bytes());
            }
            _ => {
                out.put_slice(format!("load(\"{url}\");\n").as_bytes());
            }
        }
    }
    // Pad to the planned size with inert filler.
    while out.len() < obj.size {
        let want = obj.size - out.len();
        let filler = b"/* lorem ipsum dolor sit amet, consectetur adipiscing elit */\n";
        out.put_slice(&filler[..want.min(filler.len())]);
    }
    out.freeze()
}

/// Build the recorded response for object `idx`.
fn render_response(plan: &SitePlan, idx: usize, body: Bytes) -> Response {
    let obj = &plan.objects[idx];
    let mut headers = HeaderMap::new();
    headers.append("Content-Type", obj.kind.content_type());
    headers.append("Content-Length", body.len().to_string());
    headers.append("Server", "mm-corpus/0.1");
    headers.append("Cache-Control", "max-age=0");
    Response {
        version: Version::Http11,
        status: 200,
        reason: "OK".to_string(),
        headers,
        body,
    }
}

/// Materialize the plan into a recorded site.
///
/// Bodies can dominate memory for heavy sites, so callers working through
/// a corpus should materialize one site at a time and drop it after use.
pub fn materialize(plan: &SitePlan) -> StoredSite {
    let mut site = StoredSite::new(plan.name.clone(), plan.root_url());
    for (idx, obj) in plan.objects.iter().enumerate() {
        let origin = plan.origins[obj.origin_idx];
        let addr = SocketAddr::new(origin.ip, origin.port);
        // Must agree with the Host header a browser derives from the
        // embedded URL: corpus URLs are all http://-schemed, so only
        // port 80 elides the port suffix.
        let host_header = if origin.port == 80 {
            origin.ip.to_string()
        } else {
            format!("{}:{}", origin.ip, origin.port)
        };
        let body = render_body(plan, idx);
        site.push(RequestResponsePair {
            origin: addr,
            scheme: if origin.port == 443 {
                Scheme::Https
            } else {
                Scheme::Http
            },
            request: Request::get(obj.path.clone(), host_header),
            response: render_response(plan, idx, body),
        });
    }
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{plan_site, SiteParams};
    use mm_browser::extract_urls;
    use mm_sim::RngStream;

    fn sample() -> (SitePlan, StoredSite) {
        let plan = plan_site(0, &SiteParams::default(), &mut RngStream::from_seed(4));
        let site = materialize(&plan);
        (plan, site)
    }

    #[test]
    fn one_pair_per_object() {
        let (plan, site) = sample();
        assert_eq!(site.pairs.len(), plan.objects.len());
    }

    #[test]
    fn body_sizes_match_plan() {
        let (plan, site) = sample();
        for (obj, pair) in plan.objects.iter().zip(&site.pairs) {
            // Body is at least the planned size and within slack of it.
            assert!(pair.response.body.len() >= obj.size);
            assert!(pair.response.body.len() <= obj.size + 64);
        }
    }

    #[test]
    fn embedded_urls_realize_the_dag() {
        let (plan, site) = sample();
        let root_body = &site.pairs[0].response.body;
        let urls = extract_urls(root_body);
        assert_eq!(
            urls.len(),
            plan.objects[0].references.len(),
            "root references all its planned children"
        );
        for (&child, url) in plan.objects[0].references.iter().zip(&urls) {
            assert_eq!(url.to_string(), plan.url_of(child));
        }
    }

    #[test]
    fn server_ip_count_matches_plan() {
        let (plan, site) = sample();
        assert_eq!(site.server_ips().len(), plan.server_count());
    }

    #[test]
    fn responses_have_consistent_framing() {
        let (_, site) = sample();
        for p in &site.pairs {
            assert_eq!(
                p.response.headers.content_length(),
                Some(p.response.body.len() as u64)
            );
            assert!(!p.response.headers.is_chunked());
        }
    }

    #[test]
    fn https_origins_tagged() {
        let (plan, site) = sample();
        for (obj, pair) in plan.objects.iter().zip(&site.pairs) {
            let port = plan.origins[obj.origin_idx].port;
            assert_eq!(pair.scheme == Scheme::Https, port == 443);
        }
    }
}
