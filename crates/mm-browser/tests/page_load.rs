//! End-to-end page loads: browser → ReplayShell over the simulated network.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use mm_browser::{Browser, BrowserConfig, PageLoadResult};
use mm_http::{Request, Response, Url};
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr};
use mm_record::{RequestResponsePair, Scheme, StoredSite};
use mm_replay::{ReplayConfig, ReplayMode, ReplayShell};
use mm_sim::{SimDuration, Simulator};

fn pair(ip: IpAddr, port: u16, target: &str, body: &str, ctype: &str) -> RequestResponsePair {
    RequestResponsePair {
        origin: SocketAddr::new(ip, port),
        scheme: Scheme::Http,
        request: Request::get(target, ip.to_string()),
        response: Response::ok(Bytes::copy_from_slice(body.as_bytes()), ctype),
    }
}

/// A three-origin site: root HTML referencing CSS + 2 images; the CSS
/// references a font on a third origin (depth-2 dependency).
fn test_site() -> StoredSite {
    let o1 = IpAddr::new(10, 0, 0, 1);
    let o2 = IpAddr::new(10, 0, 0, 2);
    let o3 = IpAddr::new(10, 0, 0, 3);
    let mut s = StoredSite::new("test-site", "http://10.0.0.1:80/");
    s.push(pair(
        o1,
        80,
        "/",
        "<html><link href=\"http://10.0.0.2/style.css\">\
         <img src=\"http://10.0.0.2/a.png\"><img src=\"http://10.0.0.3/b.png\"></html>",
        "text/html",
    ));
    s.push(pair(
        o2,
        80,
        "/style.css",
        "@font-face { src: url(http://10.0.0.3/font.woff) }",
        "text/css",
    ));
    s.push(pair(o2, 80, "/a.png", "AAAA", "image/png"));
    s.push(pair(o3, 80, "/b.png", "BBBB", "image/png"));
    s.push(pair(o3, 80, "/font.woff", "FONT", "font/woff"));
    s
}

struct World {
    sim: Simulator,
    browser: Browser,
    result: Rc<RefCell<Option<PageLoadResult>>>,
}

fn world(mode: ReplayMode) -> World {
    let sim = Simulator::new();
    let root = Namespace::root("world");
    let ids = PacketIdGen::new();
    let shell = ReplayShell::new(
        &root,
        &test_site(),
        ReplayConfig {
            mode,
            think_time: SimDuration::ZERO,
            ..ReplayConfig::default()
        },
        &ids,
    );
    let shell = Rc::new(shell);
    let client_host = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &root);
    let resolver: mm_browser::Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &Url| {
            let origin = SocketAddr::new(url.host.parse().unwrap(), url.port);
            shell.resolve(origin)
        })
    };
    let browser = Browser::new(client_host, resolver, BrowserConfig::default());
    World {
        sim,
        browser,
        result: Rc::new(RefCell::new(None)),
    }
}

fn run_load(w: &mut World) -> PageLoadResult {
    let slot = w.result.clone();
    w.browser
        .navigate(&mut w.sim, "http://10.0.0.1:80/", move |_sim, r| {
            *slot.borrow_mut() = Some(r);
        });
    w.sim.run();
    w.result.borrow_mut().take().expect("page load completed")
}

#[test]
fn loads_full_dependency_closure() {
    let mut w = world(ReplayMode::MultiOrigin);
    let r = run_load(&mut w);
    assert_eq!(r.resource_count(), 5, "root + css + 2 images + font");
    assert_eq!(r.failures, 0);
    assert!(r.plt > SimDuration::ZERO);
    // The font (depth 2) must have been fetched last or near-last.
    let font = r
        .resources
        .iter()
        .find(|t| t.url.contains("font.woff"))
        .unwrap();
    assert_eq!(font.status, 200);
    assert_eq!(font.body_bytes, 4);
}

#[test]
fn plt_covers_last_resource() {
    let mut w = world(ReplayMode::MultiOrigin);
    let r = run_load(&mut w);
    let last_finish = r.resources.iter().map(|t| t.finished_at).max().unwrap();
    // PLT includes the post-fetch parse delay of the last resource.
    assert!(r.plt >= last_finish.saturating_duration_since(mm_sim::Timestamp::ZERO));
}

#[test]
fn unrecorded_subresource_is_404_not_hang() {
    let o1 = IpAddr::new(10, 0, 0, 1);
    let mut site = StoredSite::new("s", "http://10.0.0.1:80/");
    site.push(pair(
        o1,
        80,
        "/",
        "<a href=\"http://10.0.0.1/missing.js\">",
        "text/html",
    ));
    let sim = Simulator::new();
    let root = Namespace::root("world");
    let ids = PacketIdGen::new();
    let shell = Rc::new(ReplayShell::new(
        &root,
        &site,
        ReplayConfig::default(),
        &ids,
    ));
    let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &root);
    let resolver: mm_browser::Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &Url| {
            shell.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
        })
    };
    let browser = Browser::new(client, resolver, BrowserConfig::default());
    let mut w = World {
        sim,
        browser,
        result: Rc::new(RefCell::new(None)),
    };
    let r = run_load(&mut w);
    assert_eq!(r.resource_count(), 2);
    let missing = r
        .resources
        .iter()
        .find(|t| t.url.contains("missing"))
        .unwrap();
    assert_eq!(missing.status, 404);
}

#[test]
fn single_server_mode_loads_same_content() {
    let mut multi = world(ReplayMode::MultiOrigin);
    let rm = run_load(&mut multi);
    let mut single = world(ReplayMode::SingleServer);
    let rs = run_load(&mut single);
    assert_eq!(rm.resource_count(), rs.resource_count());
    assert_eq!(rm.total_body_bytes, rs.total_body_bytes);
    assert_eq!(rs.failures, 0);
}

#[test]
fn deterministic_plt_for_same_world() {
    let mut a = world(ReplayMode::MultiOrigin);
    let ra = run_load(&mut a);
    let mut b = world(ReplayMode::MultiOrigin);
    let rb = run_load(&mut b);
    assert_eq!(ra.plt, rb.plt, "identical worlds give identical PLT");
}

#[test]
fn connection_pool_respects_limit() {
    // A page with 30 images on one origin: at most 6 connections open.
    let o1 = IpAddr::new(10, 0, 0, 1);
    let mut body = String::from("<html>");
    for i in 0..30 {
        body.push_str(&format!("<img src=\"http://10.0.0.1/img{i}.png\">"));
    }
    body.push_str("</html>");
    let mut site = StoredSite::new("s", "http://10.0.0.1:80/");
    site.push(pair(o1, 80, "/", &body, "text/html"));
    for i in 0..30 {
        site.push(pair(o1, 80, &format!("/img{i}.png"), "IMG", "image/png"));
    }
    let sim = Simulator::new();
    let root = Namespace::root("world");
    let ids = PacketIdGen::new();
    let shell = Rc::new(ReplayShell::new(
        &root,
        &site,
        ReplayConfig::default(),
        &ids,
    ));
    let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &root);
    let resolver: mm_browser::Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &Url| {
            shell.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
        })
    };
    let browser = Browser::new(client.clone(), resolver, BrowserConfig::default());
    let mut w = World {
        sim,
        browser,
        result: Rc::new(RefCell::new(None)),
    };
    let r = run_load(&mut w);
    assert_eq!(r.resource_count(), 31);
    // 1 connection for the root + at most 6 total on the single origin.
    assert!(
        client.stats().connections_initiated <= 6,
        "opened {} connections",
        client.stats().connections_initiated
    );
    // The replay server accepted the same number.
    assert_eq!(
        shell.hosts[0].stats().connections_accepted,
        client.stats().connections_initiated
    );
}

#[test]
fn more_origins_means_more_parallelism() {
    // Same 24 objects on 1 origin vs 4 origins: multi-origin should load
    // strictly faster because it gets 4x the connection parallelism. This
    // is the Table 2 mechanism in miniature.
    fn build(origins: usize) -> (StoredSite, String) {
        let mut body = String::from("<html>");
        for i in 0..24 {
            let ip = IpAddr::new(10, 0, 0, (1 + (i % origins)) as u8);
            body.push_str(&format!("<img src=\"http://{ip}/img{i}.png\">"));
        }
        body.push_str("</html>");
        let root_ip = IpAddr::new(10, 0, 0, 1);
        let mut site = StoredSite::new("s", "http://10.0.0.1:80/");
        site.push(pair(root_ip, 80, "/", &body, "text/html"));
        for i in 0..24 {
            let ip = IpAddr::new(10, 0, 0, (1 + (i % origins)) as u8);
            site.push(pair(
                ip,
                80,
                &format!("/img{i}.png"),
                &"X".repeat(30_000),
                "image/png",
            ));
        }
        (site, "http://10.0.0.1:80/".to_string())
    }
    let mut plts = Vec::new();
    for origins in [1usize, 4] {
        let (site, root_url) = build(origins);
        let sim = Simulator::new();
        let root = Namespace::root("world");
        let ids = PacketIdGen::new();
        let shell = Rc::new(ReplayShell::new(
            &root,
            &site,
            ReplayConfig::default(),
            &ids,
        ));
        // Put the browser behind a 30 ms delay shell so handshakes cost
        // something.
        let delay = mm_shells::delay_shell(&root, "d", SimDuration::from_millis(30));
        let client = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &delay.inner_ns);
        let resolver: mm_browser::Resolver = {
            let shell = shell.clone();
            Rc::new(move |url: &Url| {
                shell.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
            })
        };
        // Minimal CPU model so the test isolates the *network* effect of
        // origin parallelism (the full experiments use realistic CPU).
        let light_cpu = BrowserConfig {
            parse_delay_base: SimDuration::from_micros(200),
            parse_delay_per_kb: SimDuration::ZERO,
            ..BrowserConfig::default()
        };
        let browser = Browser::new(client, resolver, light_cpu);
        let mut w = World {
            sim,
            browser,
            result: Rc::new(RefCell::new(None)),
        };
        let slot = w.result.clone();
        w.browser.navigate(&mut w.sim, &root_url, move |_s, r| {
            *slot.borrow_mut() = Some(r)
        });
        w.sim.run();
        let r = w.result.borrow_mut().take().unwrap();
        assert_eq!(r.resource_count(), 25);
        plts.push(r.plt);
    }
    assert!(
        plts[1] < plts[0],
        "4 origins ({}) should beat 1 origin ({})",
        plts[1],
        plts[0]
    );
}

#[test]
fn mux_load_uses_one_connection_per_origin() {
    use mm_browser::{MuxConfig, ProtocolMode};
    use mm_replay::ServerProtocol;

    let sim = Simulator::new();
    let root = Namespace::root("world");
    let ids = PacketIdGen::new();
    let shell = Rc::new(ReplayShell::new(
        &root,
        &test_site(),
        ReplayConfig {
            think_time: SimDuration::ZERO,
            protocol: ServerProtocol::Mux(MuxConfig::default()),
            ..ReplayConfig::default()
        },
        &ids,
    ));
    let client_host = Host::new_in(IpAddr::new(100, 64, 0, 2), ids, &root);
    let resolver: mm_browser::Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &Url| {
            shell.resolve(SocketAddr::new(url.host.parse().unwrap(), url.port))
        })
    };
    let browser = Browser::new(
        client_host.clone(),
        resolver,
        BrowserConfig {
            protocol: ProtocolMode::Mux(MuxConfig::default()),
            ..BrowserConfig::default()
        },
    );
    let mut w = World {
        sim,
        browser,
        result: Rc::new(RefCell::new(None)),
    };
    let r = run_load(&mut w);
    assert_eq!(r.resource_count(), 5, "full dependency closure over mux");
    assert_eq!(r.failures, 0);
    assert_eq!(r.total_body_bytes, {
        let mut multi = world(ReplayMode::MultiOrigin);
        run_load(&mut multi).total_body_bytes
    });
    // One multiplexed connection per distinct origin (3 origins here),
    // versus up to 6 each for HTTP/1.1.
    assert_eq!(client_host.stats().connections_initiated, 3);
}
