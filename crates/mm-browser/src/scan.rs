//! Subresource discovery: scanning fetched bodies for absolute URLs.
//!
//! Real browsers discover subresources by parsing HTML/CSS/JS. The corpus
//! stores bodies whose references are absolute `http(s)://` URLs, so
//! discovery here is a linear scan for URL literals — the same dependency
//! structure, without an HTML parser. Only textual content types are
//! scanned (images and other binaries never reference further resources).

use mm_http::{Response, Url};

/// True if the response's content type can reference subresources.
pub fn is_scannable(resp: &Response) -> bool {
    match resp.headers.get("content-type") {
        Some(ct) => {
            let ct = ct.to_ascii_lowercase();
            ct.starts_with("text/")
                || ct.contains("javascript")
                || ct.contains("json")
                || ct.contains("xml")
        }
        None => false,
    }
}

/// Guess, at request time, whether a URL names a resource that can
/// reference further subresources — the signal a real browser has from
/// the referencing tag and the URL's extension. Drives mux stream
/// priorities: discovery-bearing resources (markup, styles, scripts) are
/// requested ahead of leaf content so the dependency closure unrolls as
/// fast as possible.
pub fn likely_scannable_url(url: &Url) -> bool {
    let path = url.target.split('?').next().unwrap_or("");
    let last_segment = path.rsplit('/').next().unwrap_or("");
    match last_segment.rsplit_once('.') {
        Some((_, ext)) => matches!(
            ext.to_ascii_lowercase().as_str(),
            "html" | "htm" | "css" | "js" | "json" | "xml" | "svg"
        ),
        // Extension-less paths are typically documents.
        None => true,
    }
}

/// Extract all absolute URLs from a body. Terminators are whitespace,
/// quotes and markup delimiters; malformed URLs are skipped.
pub fn extract_urls(body: &[u8]) -> Vec<Url> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let rest = &body[i..];
        let start = match find_scheme(rest) {
            Some(off) => i + off,
            None => break,
        };
        let mut end = start;
        while end < body.len() && !is_terminator(body[end]) {
            end += 1;
        }
        if let Ok(text) = std::str::from_utf8(&body[start..end]) {
            if let Ok(url) = Url::parse(text) {
                out.push(url);
            }
        }
        i = end + 1;
    }
    out
}

fn find_scheme(hay: &[u8]) -> Option<usize> {
    let h = hay.windows(7).position(|w| w == b"http://");
    let s = hay.windows(8).position(|w| w == b"https://");
    match (h, s) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (Some(a), None) => Some(a),
        (None, Some(b)) => Some(b),
        (None, None) => None,
    }
}

fn is_terminator(b: u8) -> bool {
    b.is_ascii_whitespace() || matches!(b, b'"' | b'\'' | b'<' | b'>' | b')' | b'(' | b',')
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn extracts_urls_from_html_like_body() {
        let body = br#"<html><img src="http://10.0.0.2:80/a.png"> and
            <script src='https://10.0.0.3:443/lib.js'></script></html>"#;
        let urls = extract_urls(body);
        assert_eq!(urls.len(), 2);
        assert_eq!(urls[0].to_string(), "http://10.0.0.2:80/a.png");
        assert_eq!(urls[1].to_string(), "https://10.0.0.3:443/lib.js");
    }

    #[test]
    fn plain_text_reference_list() {
        let body = b"http://1.1.1.1/x http://1.1.1.1/y\nhttp://2.2.2.2:8080/z?q=1";
        let urls = extract_urls(body);
        assert_eq!(urls.len(), 3);
        assert_eq!(urls[2].port, 8080);
        assert_eq!(urls[2].target, "/z?q=1");
    }

    #[test]
    fn malformed_urls_skipped() {
        let body = b"see http:// and http://:80/ but also http://3.3.3.3/ok";
        let urls = extract_urls(body);
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].host, "3.3.3.3");
    }

    #[test]
    fn no_urls_returns_empty() {
        assert!(extract_urls(b"just text, no links").is_empty());
        assert!(extract_urls(b"").is_empty());
    }

    #[test]
    fn scannable_content_types() {
        let html = Response::ok(Bytes::new(), "text/html; charset=utf-8");
        let css = Response::ok(Bytes::new(), "text/css");
        let js = Response::ok(Bytes::new(), "application/javascript");
        let png = Response::ok(Bytes::new(), "image/png");
        assert!(is_scannable(&html));
        assert!(is_scannable(&css));
        assert!(is_scannable(&js));
        assert!(!is_scannable(&png));
        let mut nohdr = Response::ok(Bytes::new(), "text/html");
        nohdr.headers.remove("content-type");
        assert!(!is_scannable(&nohdr));
    }

    #[test]
    fn url_at_end_of_body() {
        let urls = extract_urls(b"tail: http://9.9.9.9/last");
        assert_eq!(urls.len(), 1);
        assert_eq!(urls[0].target, "/last");
    }
}
