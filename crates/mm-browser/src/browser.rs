//! The browser page-load model.
//!
//! Loads a page the way an HTTP/1.1 browser of the paper's era does:
//! fetch the root document, scan it for subresources, fetch those over
//! per-origin connection pools (at most 6 persistent connections per
//! origin, one request at a time per connection, no pipelining), scanning
//! every textual body for further references until the dependency closure
//! is exhausted. Page load time is navigation start → last resource
//! complete, the paper's metric.
//!
//! Connection pools are keyed by *URL authority* (host:port), exactly as
//! real browsers key by origin. Under the single-server ablation the
//! resolver maps every authority to one server address: the browser still
//! opens up to 6 connections per origin name, but they all land on a
//! single machine, whose serialized request matching (one Apache + CGI)
//! becomes the bottleneck Table 2 and Figure 3 quantify.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;

use bytes::Bytes;
use mm_capture::{HttpEvent, HttpPhase, TapHandle};
use mm_http::{write_request, Request, Response, ResponseParser, Url};
use mm_mux::{
    MuxClient, MuxConfig, MuxError, StreamEvent, PRIORITY_BULK, PRIORITY_ROOT, PRIORITY_SUBRESOURCE,
};
use mm_net::{Host, SocketAddr, SocketApp, SocketEvent, TcpHandle};
use mm_sim::{SimDuration, Simulator, Timestamp};
use mm_trace::{Span, SpanHandle, SpanKind};

use crate::scan::{extract_urls, is_scannable};

/// The application protocol the browser speaks to every origin.
///
/// This is the knob the paper's SPDY case study turns: load the same
/// recorded page over HTTP/1.1 and over a multiplexed transport, under
/// identical emulated network conditions, and compare PLTs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolMode {
    /// HTTP/1.1: up to `pool_size` persistent connections per origin, one
    /// request in flight per connection, no pipelining (the 2014 browser
    /// default this crate originally modelled).
    Http1 { pool_size: usize },
    /// mm-mux: ONE connection per origin carrying every request as a
    /// concurrent stream, with the root document at higher priority.
    Mux(MuxConfig),
}

impl Default for ProtocolMode {
    fn default() -> Self {
        ProtocolMode::Http1 { pool_size: 6 }
    }
}

/// Browser configuration.
///
/// The parse/decode costs model the renderer's single main thread: each
/// fetched resource occupies the CPU for `parse_delay_base` plus
/// `parse_delay_per_kb` × size before its subresources are discovered.
/// Resources queue for the CPU serially, as on a real renderer — this is
/// what makes bare-ReplayShell page loads land at the multi-second scale
/// the paper's Figure 2 shows, with network emulation adding on top.
#[derive(Clone)]
pub struct BrowserConfig {
    /// Wire protocol and its concurrency shape (HTTP/1.1 with a 6-deep
    /// pool per origin by default, like Chrome/Firefox of the era).
    pub protocol: ProtocolMode,
    /// Fixed main-thread cost per resource (parse/decode/layout share).
    pub parse_delay_base: SimDuration,
    /// Additional main-thread cost per KiB of body.
    pub parse_delay_per_kb: SimDuration,
    /// Cap on resources fetched per page (runaway guard; real pages in the
    /// corpus stay far below it).
    pub max_resources: usize,
    /// TCP configuration for the browser's connections (`None` keeps the
    /// host default) — the client half of the harness's per-load TCP
    /// knob, e.g. `TcpConfig::recovery`.
    pub tcp: Option<mm_net::TcpConfig>,
    /// Per-request observability tap: reports `Queued`/`Sent`/`Done`/
    /// `Failed` [`HttpEvent`]s at the browser boundary, keyed by the
    /// resource's index in [`PageLoadResult::resources`]. `None` (the
    /// default) costs one branch per transition; taps observe only.
    pub capture: Option<TapHandle>,
    /// Causal-span sink: emits a `Page` span per load, a `Resource`
    /// span per fetch parented to the resource whose parse discovered
    /// it, and the contiguous per-resource phase chain (`Queued` →
    /// [`ConnSetup`] → [`MuxWait`] → `RequestTx` → `Transfer` →
    /// `RenderQueue` → `Parse`) that tiles queued → parse-complete —
    /// the exact-tiling property `mmpath`'s critical-path walk sums to
    /// PLT. `None` (the default) costs one branch per transition;
    /// sinks observe only.
    pub span: Option<SpanHandle>,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        BrowserConfig {
            protocol: ProtocolMode::default(),
            parse_delay_base: SimDuration::from_millis(18),
            parse_delay_per_kb: SimDuration::from_micros(150),
            max_resources: 10_000,
            tcp: None,
            capture: None,
            span: None,
        }
    }
}

/// The span layer's connection id: the browser-side (initiator) local
/// address packed as `ip << 16 | port` — the same id the socket layer
/// and the replay servers stamp.
fn span_conn_id(addr: SocketAddr) -> u64 {
    ((addr.ip.0 as u64) << 16) | addr.port as u64
}

/// Emit an [`HttpEvent`] if a tap is attached (browser side: `resource`
/// carries the timing index).
fn tap_http(
    tap: &Option<TapHandle>,
    now: Timestamp,
    phase: HttpPhase,
    resource: usize,
    url: &str,
    status: u16,
    bytes: u64,
) {
    if let Some(tap) = tap {
        tap.on_http(&HttpEvent {
            t_ns: now.as_nanos(),
            phase,
            resource: resource as u32,
            url: url.to_string(),
            status,
            bytes,
        });
    }
}

/// Maps a URL's origin to the address actually serving it (the browser's
/// stand-in for DNS). Identity in multi-origin replay; all-to-one in the
/// single-server ablation; arbitrary for live-web models.
pub type Resolver = Rc<dyn Fn(&Url) -> SocketAddr>;

/// Outcome of one resource fetch.
#[derive(Debug, Clone)]
pub struct ResourceTiming {
    pub url: String,
    /// When the fetch was queued.
    pub queued_at: Timestamp,
    /// When the response completed (or failed).
    pub finished_at: Timestamp,
    pub status: u16,
    pub body_bytes: u64,
    pub failed: bool,
}

/// Result of a complete page load.
#[derive(Debug, Clone)]
pub struct PageLoadResult {
    /// Navigation start → last resource complete.
    pub plt: SimDuration,
    pub resources: Vec<ResourceTiming>,
    pub total_body_bytes: u64,
    pub failures: u64,
}

impl PageLoadResult {
    /// Number of resources fetched.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }
}

/// The host header a URL implies (port elided when default).
fn host_header(url: &Url) -> String {
    let default =
        (url.scheme == "http" && url.port == 80) || (url.scheme == "https" && url.port == 443);
    if default {
        url.host.clone()
    } else {
        format!("{}:{}", url.host, url.port)
    }
}

struct FetchJob {
    url: Url,
    timing_idx: usize,
}

/// Per-resource span bookkeeping: ids allocated at fetch time plus the
/// phase-boundary stamps the emitters fill in along the way. Index-
/// parallel with `LoadState::timings`; inert (all zero) when no sink is
/// attached.
#[derive(Clone, Copy, Default)]
struct ResSpanRec {
    span_id: u64,
    /// Span id of the resource whose parse discovered this one (the
    /// `Page` span for the root document).
    parent_span: u64,
    conn: u64,
    /// HTTP/1.1: request written to the socket. Mux: stream submitted.
    sent_at: Option<Timestamp>,
    /// Connection-setup wait interval, when this resource paid one.
    setup_t0: Option<Timestamp>,
    setup_t1: Option<Timestamp>,
    /// Mux only: HEADERS actually sent (stream left the client's queue).
    opened_at: Option<Timestamp>,
    first_byte_at: Option<Timestamp>,
}

struct Conn {
    /// None only during the instant between allocation and `connect`.
    handle: Option<TcpHandle>,
    /// In-flight jobs in request order (HTTP/1.1: one at a time here).
    active: VecDeque<FetchJob>,
    connected: bool,
    dead: bool,
    /// When `connect` was issued (span layer: ConnSetup start).
    connect_started: Timestamp,
    /// When the handshake completed; a request written at exactly this
    /// instant waited on the handshake (span layer: ConnSetup end).
    connected_at: Option<Timestamp>,
}

type ConnRef = Rc<RefCell<Conn>>;

struct Pool {
    /// Where this origin's connections actually go (post-resolver).
    addr: SocketAddr,
    /// HTTP/1.1 connections (unused in mux mode).
    conns: Vec<ConnRef>,
    /// The origin's single multiplexed connection (mux mode only).
    mux: Option<MuxClient>,
    /// When the mux connection's handshake completed (span layer: a
    /// stream whose HEADERS left at exactly this instant waited on it).
    mux_ready_at: Option<Timestamp>,
    /// Jobs not yet handed to a connection.
    queue: VecDeque<FetchJob>,
}

/// Completion callback invoked when the page load settles.
type DoneCallback = Box<dyn FnOnce(&mut Simulator, PageLoadResult)>;

struct LoadState {
    started: Timestamp,
    seen: HashSet<String>,
    outstanding: usize,
    /// Pools keyed by URL authority (`host:port`).
    pools: HashMap<String, Pool>,
    timings: Vec<ResourceTiming>,
    /// Span id of this load's `Page` span (0 when no sink).
    page_span: u64,
    /// Index-parallel with `timings`.
    spans: Vec<ResSpanRec>,
    finished_at: Timestamp,
    /// The renderer main thread is busy until this instant; parse jobs
    /// serialize behind it.
    cpu_busy_until: Timestamp,
    done: Option<DoneCallback>,
}

struct BrowserInner {
    host: Host,
    resolver: Resolver,
    config: BrowserConfig,
    /// Per-resource CPU-cost jitter: (rng, lognormal sigma). Models run-to-
    /// run renderer variability (GC pauses, scheduler preemption) — the
    /// dominant source of PLT variance on a single machine (Table 1).
    cpu_jitter: Option<(mm_sim::RngStream, f64)>,
    load: Option<LoadState>,
}

/// A browser instance bound to a virtual host.
#[derive(Clone)]
pub struct Browser {
    inner: Rc<RefCell<BrowserInner>>,
}

impl Browser {
    /// A browser on `host` resolving origins through `resolver`.
    pub fn new(host: Host, resolver: Resolver, config: BrowserConfig) -> Browser {
        if let Some(tcp) = &config.tcp {
            host.set_tcp_config(tcp.clone());
        }
        Browser {
            inner: Rc::new(RefCell::new(BrowserInner {
                host,
                resolver,
                config,
                cpu_jitter: None,
                load: None,
            })),
        }
    }

    /// Install per-resource CPU jitter: each resource's main-thread cost
    /// is multiplied by a mean-one lognormal factor with the given sigma.
    pub fn set_cpu_jitter(&self, rng: mm_sim::RngStream, sigma: f64) {
        assert!(sigma >= 0.0);
        self.inner.borrow_mut().cpu_jitter = Some((rng, sigma));
    }

    /// Begin loading `root_url`; `done` fires when the page is complete.
    /// Panics if a load is already in progress (one page at a time).
    pub fn navigate(
        &self,
        sim: &mut Simulator,
        root_url: &str,
        done: impl FnOnce(&mut Simulator, PageLoadResult) + 'static,
    ) {
        let url = Url::parse(root_url).expect("valid root URL");
        let page_span = {
            let mut inner = self.inner.borrow_mut();
            assert!(inner.load.is_none(), "navigation already in progress");
            let page_span = inner.config.span.as_ref().map_or(0, |s| s.next_id());
            inner.load = Some(LoadState {
                started: sim.now(),
                seen: HashSet::new(),
                outstanding: 0,
                pools: HashMap::new(),
                timings: Vec::new(),
                page_span,
                spans: Vec::new(),
                finished_at: sim.now(),
                cpu_busy_until: sim.now(),
                done: Some(Box::new(done)),
            });
            page_span
        };
        self.fetch(sim, url, page_span);
    }

    /// Queue a fetch for `url` (no-op if already seen this load).
    /// `parent_span` is the span id of whatever discovered this URL: the
    /// `Page` span for the root document, the discovering resource's
    /// span for everything else (0 when no sink is attached).
    fn fetch(&self, sim: &mut Simulator, url: Url, parent_span: u64) {
        let (authority, mux) = {
            let mut inner = self.inner.borrow_mut();
            let resolver = inner.resolver.clone();
            let max = inner.config.max_resources;
            let mux = matches!(inner.config.protocol, ProtocolMode::Mux(_));
            let tap = inner.config.capture.clone();
            let span_id = inner.config.span.as_ref().map_or(0, |s| s.next_id());
            let Some(load) = inner.load.as_mut() else {
                return;
            };
            let key = url.to_string();
            if load.seen.contains(&key) || load.seen.len() >= max {
                return;
            }
            load.seen.insert(key.clone());
            load.outstanding += 1;
            let authority = url.authority();
            let addr = resolver(&url);
            let timing_idx = load.timings.len();
            tap_http(&tap, sim.now(), HttpPhase::Queued, timing_idx, &key, 0, 0);
            load.timings.push(ResourceTiming {
                url: key,
                queued_at: sim.now(),
                finished_at: sim.now(),
                status: 0,
                body_bytes: 0,
                failed: false,
            });
            load.spans.push(ResSpanRec {
                span_id,
                parent_span,
                ..ResSpanRec::default()
            });
            let pool = load.pools.entry(authority.clone()).or_insert_with(|| Pool {
                addr,
                conns: Vec::new(),
                mux: None,
                mux_ready_at: None,
                queue: VecDeque::new(),
            });
            pool.queue.push_back(FetchJob { url, timing_idx });
            (authority, mux)
        };
        if mux {
            self.pump_mux(sim, &authority);
        } else {
            self.pump_pool(sim, &authority);
        }
    }

    /// Dispatch queued jobs in the pool for `authority`: reuse idle
    /// connections, open new ones up to the per-origin limit.
    fn pump_pool(&self, sim: &mut Simulator, authority: &str) {
        loop {
            // Find one assignment to perform, then do socket work outside
            // the borrow.
            enum Step {
                Send(TcpHandle, Bytes),
                Open(SocketAddr),
                Done,
            }
            let step = {
                let mut inner = self.inner.borrow_mut();
                let max_conns = match &inner.config.protocol {
                    ProtocolMode::Http1 { pool_size } => *pool_size,
                    ProtocolMode::Mux(_) => unreachable!("pump_pool is HTTP/1.1-only"),
                };
                let tap = inner.config.capture.clone();
                let span_on = inner.config.span.is_some();
                let Some(load) = inner.load.as_mut() else {
                    return;
                };
                let Some(pool) = load.pools.get_mut(authority) else {
                    return;
                };
                pool.conns.retain(|c| !c.borrow().dead);
                if pool.queue.is_empty() {
                    Step::Done
                } else if let Some(conn) = pool
                    .conns
                    .iter()
                    .find(|c| {
                        let c = c.borrow();
                        c.connected && c.active.is_empty()
                    })
                    .cloned()
                {
                    let job = pool.queue.pop_front().unwrap();
                    let req = Self::build_request(&job.url);
                    let wire = write_request(&req);
                    tap_http(
                        &tap,
                        sim.now(),
                        HttpPhase::Sent,
                        job.timing_idx,
                        &job.url.to_string(),
                        0,
                        0,
                    );
                    let mut c = conn.borrow_mut();
                    if span_on {
                        let now = sim.now();
                        let queued = load.timings[job.timing_idx].queued_at;
                        let rec = &mut load.spans[job.timing_idx];
                        rec.sent_at = Some(now);
                        if let Some(h) = &c.handle {
                            rec.conn = span_conn_id(h.local_addr());
                        }
                        // A request written at the very instant the
                        // handshake completed waited on that handshake.
                        if c.connected_at == Some(now) {
                            rec.setup_t0 = Some(c.connect_started.max(queued));
                            rec.setup_t1 = Some(now);
                        }
                    }
                    c.active.push_back(job);
                    let handle = c.handle.clone().expect("connected conn has a handle");
                    Step::Send(handle, wire)
                } else if pool.conns.len() < max_conns {
                    Step::Open(pool.addr)
                } else {
                    Step::Done // every conn busy or still connecting
                }
            };
            match step {
                Step::Done => return,
                Step::Send(handle, wire) => {
                    handle.send(sim, wire);
                }
                Step::Open(addr) => {
                    self.open_connection(sim, authority, addr);
                }
            }
        }
    }

    fn build_request(url: &Url) -> Request {
        let mut req = Request::get(url.target.clone(), host_header(url));
        req.headers.append("Accept", "*/*");
        req
    }

    /// Dispatch queued jobs for `authority` over its single multiplexed
    /// connection, opening it on first use. The client enforces the
    /// concurrent-stream cap internally, so every job is handed over at
    /// once and queues there in priority order.
    fn pump_mux(&self, sim: &mut Simulator, authority: &str) {
        loop {
            enum Step {
                Submit(MuxClient, FetchJob),
                Connect(SocketAddr, MuxConfig),
                Done,
            }
            let step = {
                let mut inner = self.inner.borrow_mut();
                let config = match &inner.config.protocol {
                    ProtocolMode::Mux(c) => c.clone(),
                    ProtocolMode::Http1 { .. } => unreachable!("pump_mux is mux-only"),
                };
                let Some(load) = inner.load.as_mut() else {
                    return;
                };
                let Some(pool) = load.pools.get_mut(authority) else {
                    return;
                };
                if pool.queue.is_empty() {
                    Step::Done
                } else {
                    match &pool.mux {
                        Some(client) if !client.is_dead() => {
                            Step::Submit(client.clone(), pool.queue.pop_front().unwrap())
                        }
                        _ => Step::Connect(pool.addr, config),
                    }
                }
            };
            match step {
                Step::Done => return,
                Step::Submit(client, job) => {
                    // The root document preempts everything; discovery-
                    // bearing subresources preempt leaf content.
                    let priority = if job.timing_idx == 0 {
                        PRIORITY_ROOT
                    } else if crate::scan::likely_scannable_url(&job.url) {
                        PRIORITY_SUBRESOURCE
                    } else {
                        PRIORITY_BULK
                    };
                    let req = Self::build_request(&job.url);
                    let tap = self.inner.borrow().config.capture.clone();
                    tap_http(
                        &tap,
                        sim.now(),
                        HttpPhase::Sent,
                        job.timing_idx,
                        &job.url.to_string(),
                        0,
                        0,
                    );
                    self.stamp_mux_submit(sim.now(), job.timing_idx, &client);
                    let me = self.clone();
                    let auth = authority.to_string();
                    let tag = job.timing_idx as u32;
                    client.request_tagged(sim, req, priority, tag, move |sim, result| {
                        me.on_mux_result(sim, &auth, job, result);
                    });
                }
                Step::Connect(addr, config) => {
                    let host = self.inner.borrow().host.clone();
                    let client = MuxClient::connect(sim, &host, addr, config);
                    let mut inner = self.inner.borrow_mut();
                    if inner.config.span.is_some() {
                        let me = self.clone();
                        let auth = authority.to_string();
                        client.set_observer(Rc::new(move |tag, ev, t| {
                            me.on_mux_stream_event(&auth, tag, ev, t);
                        }));
                    }
                    if let Some(load) = inner.load.as_mut() {
                        if let Some(pool) = load.pools.get_mut(authority) {
                            pool.mux = Some(client);
                            pool.mux_ready_at = None;
                        }
                    }
                }
            }
        }
    }

    /// A mux stream settled (response or connection failure).
    fn on_mux_result(
        &self,
        sim: &mut Simulator,
        authority: &str,
        job: FetchJob,
        result: Result<Response, MuxError>,
    ) {
        match result {
            Ok(resp) => self.complete_resource(sim, job.timing_idx, resp),
            Err(_) => {
                // One automatic retry per job on a fresh connection,
                // matching the HTTP/1.1 path's policy.
                let retry = {
                    let mut inner = self.inner.borrow_mut();
                    let tap = inner.config.capture.clone();
                    let span = inner.config.span.clone();
                    let Some(load) = inner.load.as_mut() else {
                        return;
                    };
                    if load.timings[job.timing_idx].failed {
                        load.timings[job.timing_idx].finished_at = sim.now();
                        load.outstanding -= 1;
                        let t = &load.timings[job.timing_idx];
                        tap_http(
                            &tap,
                            sim.now(),
                            HttpPhase::Failed,
                            job.timing_idx,
                            &t.url,
                            0,
                            0,
                        );
                        Self::span_failed(
                            &span,
                            &load.spans[job.timing_idx],
                            job.timing_idx,
                            t.queued_at,
                            &t.url,
                            sim.now(),
                        );
                        false
                    } else {
                        load.timings[job.timing_idx].failed = true;
                        // Reset the span stamps so the retry re-times its
                        // phases from a clean slate.
                        let rec = &mut load.spans[job.timing_idx];
                        *rec = ResSpanRec {
                            span_id: rec.span_id,
                            parent_span: rec.parent_span,
                            ..ResSpanRec::default()
                        };
                        match load.pools.get_mut(authority) {
                            Some(pool) => {
                                if pool.mux.as_ref().is_some_and(|c| c.is_dead()) {
                                    pool.mux = None;
                                }
                                pool.queue.push_back(job);
                                true
                            }
                            None => {
                                load.timings[job.timing_idx].finished_at = sim.now();
                                load.outstanding -= 1;
                                let t = &load.timings[job.timing_idx];
                                tap_http(
                                    &tap,
                                    sim.now(),
                                    HttpPhase::Failed,
                                    job.timing_idx,
                                    &t.url,
                                    0,
                                    0,
                                );
                                Self::span_failed(
                                    &span,
                                    &load.spans[job.timing_idx],
                                    job.timing_idx,
                                    t.queued_at,
                                    &t.url,
                                    sim.now(),
                                );
                                false
                            }
                        }
                    }
                };
                if retry {
                    self.pump_mux(sim, authority);
                }
                self.maybe_finish(sim);
            }
        }
    }

    fn open_connection(&self, sim: &mut Simulator, authority: &str, addr: SocketAddr) {
        let host = self.inner.borrow().host.clone();
        let conn: ConnRef = Rc::new(RefCell::new(Conn {
            handle: None,
            active: VecDeque::new(),
            connected: false,
            dead: false,
            connect_started: sim.now(),
            connected_at: None,
        }));
        let app = Rc::new(ConnApp {
            browser: self.clone(),
            conn: conn.clone(),
            authority: authority.to_string(),
            parser: RefCell::new(ResponseParser::new()),
        });
        let handle = host.connect(sim, addr, app);
        conn.borrow_mut().handle = Some(handle);
        if let Some(load) = self.inner.borrow_mut().load.as_mut() {
            if let Some(pool) = load.pools.get_mut(authority) {
                pool.conns.push(conn);
            }
        }
    }

    /// A connection finished its handshake.
    fn on_conn_ready(&self, sim: &mut Simulator, authority: &str, conn: &ConnRef) {
        {
            let mut c = conn.borrow_mut();
            c.connected = true;
            c.connected_at = Some(sim.now());
        }
        self.pump_pool(sim, authority);
    }

    /// A connection died (reset or closed by the server). Re-queue any
    /// in-flight jobs so they are retried on a fresh connection; if the
    /// job was already retried, fail it.
    fn on_conn_dead(&self, sim: &mut Simulator, authority: &str, conn: &ConnRef) {
        let jobs: Vec<FetchJob> = {
            let mut c = conn.borrow_mut();
            c.dead = true;
            c.connected = false;
            c.active.drain(..).collect()
        };
        {
            let mut inner = self.inner.borrow_mut();
            let tap = inner.config.capture.clone();
            let span = inner.config.span.clone();
            if let Some(load) = inner.load.as_mut() {
                if let Some(pool) = load.pools.get_mut(authority) {
                    for job in jobs {
                        // One automatic retry per job: track via timing
                        // status sentinel (status stays 0 until success).
                        if load.timings[job.timing_idx].failed {
                            // Second failure: give up below.
                            load.timings[job.timing_idx].finished_at = sim.now();
                            load.outstanding -= 1;
                            let t = &load.timings[job.timing_idx];
                            tap_http(
                                &tap,
                                sim.now(),
                                HttpPhase::Failed,
                                job.timing_idx,
                                &t.url,
                                0,
                                0,
                            );
                            Self::span_failed(
                                &span,
                                &load.spans[job.timing_idx],
                                job.timing_idx,
                                t.queued_at,
                                &t.url,
                                sim.now(),
                            );
                            continue;
                        }
                        load.timings[job.timing_idx].failed = true;
                        let rec = &mut load.spans[job.timing_idx];
                        *rec = ResSpanRec {
                            span_id: rec.span_id,
                            parent_span: rec.parent_span,
                            ..ResSpanRec::default()
                        };
                        pool.queue.push_back(job);
                    }
                }
            }
        }
        self.pump_pool(sim, authority);
        self.maybe_finish(sim);
    }

    /// A complete response arrived for the oldest in-flight job on `conn`.
    fn on_response(&self, sim: &mut Simulator, authority: &str, conn: &ConnRef, resp: Response) {
        let job = conn.borrow_mut().active.pop_front();
        let Some(job) = job else {
            return; // unsolicited response; ignore
        };
        // This connection is free again.
        self.pump_pool(sim, authority);
        self.complete_resource(sim, job.timing_idx, resp);
    }

    /// Record a fetched resource, charge its parse cost to the renderer
    /// main thread, and scan it for subresources once parsed. Shared by
    /// the HTTP/1.1 and mux paths.
    fn complete_resource(&self, sim: &mut Simulator, timing_idx: usize, resp: Response) {
        let span_sink = self.inner.borrow().config.span.clone();
        let (parse_done_at, parse_start, span_rec) = {
            let mut inner = self.inner.borrow_mut();
            let cfg_base = inner.config.parse_delay_base;
            let cfg_kb = inner.config.parse_delay_per_kb;
            let tap = inner.config.capture.clone();
            let Some(load) = inner.load.as_mut() else {
                return;
            };
            let t = &mut load.timings[timing_idx];
            t.finished_at = sim.now();
            t.status = resp.status;
            t.body_bytes = resp.body.len() as u64;
            t.failed = false;
            tap_http(
                &tap,
                sim.now(),
                HttpPhase::Done,
                timing_idx,
                &t.url,
                resp.status,
                resp.body.len() as u64,
            );
            let mut cost = cfg_base + cfg_kb.saturating_mul(resp.body.len() as u64 / 1024);
            if let Some((rng, sigma)) = inner.cpu_jitter.as_mut() {
                if *sigma > 0.0 {
                    // Mean-one lognormal factor (mu = -sigma^2/2).
                    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
                    let u2 = rng.next_f64();
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    let factor = (*sigma * z - *sigma * *sigma / 2.0).exp();
                    cost = cost.mul_f64(factor);
                }
            }
            let load = inner.load.as_mut().unwrap();
            // Serialize on the renderer main thread.
            let start = load.cpu_busy_until.max(sim.now());
            load.cpu_busy_until = start + cost;
            let span_rec = span_sink.as_ref().map(|_| {
                let t = &load.timings[timing_idx];
                (load.spans[timing_idx], t.queued_at, t.url.clone())
            });
            (load.cpu_busy_until, start, span_rec)
        };
        let parent_span = if let (Some(sp), Some((rec, queued_at, url))) = (&span_sink, span_rec) {
            Self::emit_resource_chain(
                sp,
                &rec,
                timing_idx,
                queued_at,
                sim.now(),
                parse_start,
                parse_done_at,
                &url,
            );
            rec.span_id
        } else {
            0
        };
        // Parse for subresources once the main thread has processed this
        // resource, then retire it.
        let me = self.clone();
        let scannable = is_scannable(&resp) && resp.status == 200;
        let body = resp.body;
        sim.schedule_at(parse_done_at, move |sim| {
            if scannable {
                for url in extract_urls(&body) {
                    me.fetch(sim, url, parent_span);
                }
            }
            {
                let mut inner = me.inner.borrow_mut();
                if let Some(load) = inner.load.as_mut() {
                    load.outstanding -= 1;
                    load.finished_at = sim.now();
                }
            }
            me.maybe_finish(sim);
        });
    }

    /// Stamp a mux stream submission (span layer; no-op without a sink).
    fn stamp_mux_submit(&self, now: Timestamp, timing_idx: usize, client: &MuxClient) {
        let mut inner = self.inner.borrow_mut();
        if inner.config.span.is_none() {
            return;
        }
        let conn = client.local_addr().map_or(0, span_conn_id);
        let Some(load) = inner.load.as_mut() else {
            return;
        };
        let rec = &mut load.spans[timing_idx];
        rec.sent_at = Some(now);
        rec.conn = conn;
    }

    /// Mux stream milestone from the client's observer hook (span layer).
    ///
    /// `Opened` at the very instant the connection became ready means the
    /// stream waited on the handshake: that wait is `ConnSetup`, and the
    /// residual `MuxWait` collapses to zero. `Opened` later than both
    /// submit and ready is time spent queued behind the concurrent-stream
    /// cap — the HoL-style wait `mmpath` attributes to `MuxWait`.
    fn on_mux_stream_event(&self, authority: &str, tag: u32, ev: StreamEvent, t: Timestamp) {
        let mut inner = self.inner.borrow_mut();
        let Some(load) = inner.load.as_mut() else {
            return;
        };
        match ev {
            StreamEvent::ConnReady => {
                if let Some(pool) = load.pools.get_mut(authority) {
                    pool.mux_ready_at = Some(t);
                }
            }
            StreamEvent::Opened => {
                let ready = load.pools.get(authority).and_then(|p| p.mux_ready_at);
                if let Some(rec) = load.spans.get_mut(tag as usize) {
                    rec.opened_at = Some(t);
                    if ready == Some(t) {
                        if let Some(sent) = rec.sent_at {
                            if t > sent {
                                rec.setup_t0 = Some(sent);
                                rec.setup_t1 = Some(t);
                            }
                        }
                    }
                }
            }
            StreamEvent::FirstByte => {
                if let Some(rec) = load.spans.get_mut(tag as usize) {
                    if rec.first_byte_at.is_none() {
                        rec.first_byte_at = Some(t);
                    }
                }
            }
        }
    }

    /// First response bytes on an HTTP/1.1 connection: stamp the front
    /// in-flight job's first-byte instant (span layer; no-op without a
    /// sink). Safe to call per Data event: without pipelining the next
    /// request is only written after the previous response completes, so
    /// every Data event's bytes belong to the front job.
    fn on_first_bytes(&self, now: Timestamp, conn: &ConnRef) {
        let mut inner = self.inner.borrow_mut();
        if inner.config.span.is_none() {
            return;
        }
        let idx = match conn.borrow().active.front() {
            Some(job) => job.timing_idx,
            None => return,
        };
        let Some(load) = inner.load.as_mut() else {
            return;
        };
        let rec = &mut load.spans[idx];
        if rec.first_byte_at.is_none() && rec.sent_at.is_some() {
            rec.first_byte_at = Some(now);
        }
    }

    /// Record the span pair for a permanently failed resource: its
    /// `Resource` span plus one `Failed` phase covering queued → give-up.
    fn span_failed(
        span: &Option<SpanHandle>,
        rec: &ResSpanRec,
        timing_idx: usize,
        queued_at: Timestamp,
        url: &str,
        now: Timestamp,
    ) {
        let Some(sp) = span else { return };
        sp.record(Span {
            load: 0,
            id: rec.span_id,
            parent: rec.parent_span,
            kind: SpanKind::Resource,
            t0_ns: queued_at.as_nanos(),
            t1_ns: now.as_nanos(),
            res: timing_idx as u32,
            conn: rec.conn,
            url: url.to_string(),
            detail: "failed".to_string(),
        });
        sp.record(Span {
            load: 0,
            id: sp.next_id(),
            parent: rec.span_id,
            kind: SpanKind::Failed,
            t0_ns: queued_at.as_nanos(),
            t1_ns: now.as_nanos(),
            res: timing_idx as u32,
            conn: rec.conn,
            url: String::new(),
            detail: String::new(),
        });
    }

    /// Record a completed resource's `Resource` span and its phase chain.
    ///
    /// The phases tile `[queued_at, parse_end]` contiguously: each starts
    /// where the previous ended and zero-width phases are elided, so the
    /// phase durations of any one resource sum *exactly* to its span —
    /// the invariant `mmpath`'s critical-path walk relies on to
    /// reconstruct PLT without residue.
    #[allow(clippy::too_many_arguments)]
    fn emit_resource_chain(
        sp: &SpanHandle,
        rec: &ResSpanRec,
        timing_idx: usize,
        queued_at: Timestamp,
        done_at: Timestamp,
        parse_start: Timestamp,
        parse_end: Timestamp,
        url: &str,
    ) {
        let res = timing_idx as u32;
        sp.record(Span {
            load: 0,
            id: rec.span_id,
            parent: rec.parent_span,
            kind: SpanKind::Resource,
            t0_ns: queued_at.as_nanos(),
            t1_ns: parse_end.as_nanos(),
            res,
            conn: rec.conn,
            url: url.to_string(),
            detail: String::new(),
        });
        let mut phases: Vec<(SpanKind, Timestamp, Timestamp)> = Vec::with_capacity(7);
        let sent = rec.sent_at.unwrap_or(done_at).min(done_at).max(queued_at);
        let mut t = queued_at;
        match (rec.setup_t0, rec.setup_t1) {
            (Some(a), Some(b)) if b > a => {
                let a = a.max(queued_at);
                phases.push((SpanKind::Queued, t, a));
                phases.push((SpanKind::ConnSetup, a, b));
                t = b;
            }
            _ => {
                phases.push((SpanKind::Queued, t, sent));
                t = sent;
            }
        }
        if let Some(opened) = rec.opened_at {
            let opened = opened.max(t).min(done_at);
            phases.push((SpanKind::MuxWait, t, opened));
            t = opened;
        }
        let fb = rec.first_byte_at.unwrap_or(done_at).max(t).min(done_at);
        phases.push((SpanKind::RequestTx, t, fb));
        phases.push((SpanKind::Transfer, fb, done_at));
        phases.push((SpanKind::RenderQueue, done_at, parse_start));
        phases.push((SpanKind::Parse, parse_start, parse_end));
        for (kind, a, b) in phases {
            if b > a {
                sp.record(Span {
                    load: 0,
                    id: sp.next_id(),
                    parent: rec.span_id,
                    kind,
                    t0_ns: a.as_nanos(),
                    t1_ns: b.as_nanos(),
                    res,
                    conn: rec.conn,
                    url: String::new(),
                    detail: String::new(),
                });
            }
        }
    }

    fn maybe_finish(&self, sim: &mut Simulator) {
        let finished = {
            let mut inner = self.inner.borrow_mut();
            match inner.load.as_mut() {
                Some(load) if load.outstanding == 0 => {
                    let load = inner.load.take().unwrap();
                    Some(load)
                }
                _ => None,
            }
        };
        if let Some(load) = finished {
            {
                let inner = self.inner.borrow();
                if let Some(sp) = &inner.config.span {
                    let arm = match inner.config.protocol {
                        ProtocolMode::Http1 { .. } => "http1",
                        ProtocolMode::Mux(_) => "mux",
                    };
                    sp.record(Span {
                        load: 0,
                        id: load.page_span,
                        parent: 0,
                        kind: SpanKind::Page,
                        t0_ns: load.started.as_nanos(),
                        t1_ns: load.finished_at.as_nanos(),
                        res: mm_trace::NO_RESOURCE,
                        conn: 0,
                        url: load
                            .timings
                            .first()
                            .map(|t| t.url.clone())
                            .unwrap_or_default(),
                        detail: arm.to_string(),
                    });
                }
            }
            let total: u64 = load.timings.iter().map(|t| t.body_bytes).sum();
            let failures = load
                .timings
                .iter()
                .filter(|t| t.failed || (t.status == 0))
                .count() as u64;
            let result = PageLoadResult {
                plt: load.finished_at.saturating_duration_since(load.started),
                resources: load.timings,
                total_body_bytes: total,
                failures,
            };
            if let Some(done) = load.done {
                done(sim, result);
            }
        }
    }
}

/// The per-connection socket app.
struct ConnApp {
    browser: Browser,
    conn: ConnRef,
    authority: String,
    parser: RefCell<ResponseParser>,
}

impl SocketApp for ConnApp {
    fn on_event(&self, sim: &mut Simulator, _h: &TcpHandle, ev: SocketEvent) {
        match ev {
            SocketEvent::Connected => {
                self.browser.on_conn_ready(sim, &self.authority, &self.conn);
            }
            SocketEvent::Data(bytes) => {
                self.browser.on_first_bytes(sim.now(), &self.conn);
                // The browser only issues GETs, and the parser defaults to
                // "not a HEAD response" when its queue is empty, so no
                // expect_head bookkeeping is required.
                let resps = self.parser.borrow_mut().feed(&bytes);
                match resps {
                    Ok(resps) => {
                        for resp in resps {
                            self.browser
                                .on_response(sim, &self.authority, &self.conn, resp);
                        }
                    }
                    Err(_) => {
                        self.browser.on_conn_dead(sim, &self.authority, &self.conn);
                    }
                }
            }
            SocketEvent::PeerClosed | SocketEvent::Reset => {
                self.browser.on_conn_dead(sim, &self.authority, &self.conn);
            }
            // Requests are tiny; the browser never paces its writes.
            SocketEvent::SendQueueDrained => {}
        }
    }
}
