//! # mm-browser — the page-load model
//!
//! A browser for the simulated network: per-origin connection pools,
//! HTTP/1.1 fetching over the mm-net TCP stack, subresource discovery by
//! scanning fetched bodies ([`scan`]), and page-load-time measurement
//! ([`browser`]). The paper's PLT metric — navigation start to last
//! resource complete — is what [`browser::PageLoadResult::plt`] reports.

pub mod browser;
pub mod scan;

pub use browser::{Browser, BrowserConfig, PageLoadResult, ProtocolMode, Resolver, ResourceTiming};
pub use mm_mux::MuxConfig;
pub use scan::{extract_urls, is_scannable, likely_scannable_url};
