//! Property tests: HTTP parse ∘ serialize is the identity, for arbitrary
//! well-formed messages and arbitrary chunkings of the byte stream.

use bytes::Bytes;
use mm_http::{
    chunk_body, write_request, write_response, HeaderMap, Method, Request, RequestParser, Response,
    ResponseParser, Version,
};
use proptest::prelude::*;

fn arb_token() -> impl Strategy<Value = String> {
    "[a-zA-Z][a-zA-Z0-9-]{0,15}".prop_map(|s| s)
}

fn arb_header_value() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9 ;=/.,_-]{0,40}".prop_map(|s| s.trim().to_string())
}

fn arb_headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((arb_token(), arb_header_value()), 0..8)
}

fn arb_target() -> impl Strategy<Value = String> {
    "/[a-zA-Z0-9/_.-]{0,30}(\\?[a-zA-Z0-9=&-]{0,20})?".prop_map(|s| s)
}

fn arb_body() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..2000)
}

proptest! {
    #[test]
    fn request_round_trip(
        target in arb_target(),
        headers in arb_headers(),
        body in arb_body(),
        chunk in 1usize..97,
    ) {
        let mut req = Request {
            method: Method::Post,
            target,
            version: Version::Http11,
            headers: HeaderMap::new(),
            body: Bytes::from(body.clone()),
        };
        req.headers.append("Host", "example.com");
        for (n, v) in &headers {
            // Avoid fields that alter framing.
            if !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding") {
                req.headers.append(n.clone(), v.clone());
            }
        }
        req.headers.set("Content-Length", body.len().to_string());
        let wire = write_request(&req);
        // Feed in arbitrary-sized chunks.
        let mut parser = RequestParser::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(parser.feed(piece).unwrap());
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0], &req);
        prop_assert_eq!(parser.buffered(), 0);
    }

    #[test]
    fn response_round_trip(
        status in 200u16..600,
        headers in arb_headers(),
        body in arb_body(),
        chunk in 1usize..97,
    ) {
        let mut resp = Response {
            version: Version::Http11,
            status,
            reason: "Test".to_string(),
            headers: HeaderMap::new(),
            body: Bytes::from(body.clone()),
        };
        for (n, v) in &headers {
            if !n.eq_ignore_ascii_case("content-length")
                && !n.eq_ignore_ascii_case("transfer-encoding") {
                resp.headers.append(n.clone(), v.clone());
            }
        }
        let bodyless = Response::bodyless_status(status);
        if bodyless {
            resp.body = Bytes::new();
        } else {
            resp.headers.set("Content-Length", body.len().to_string());
        }
        let wire = write_response(&resp);
        let mut parser = ResponseParser::new();
        parser.expect_head(false);
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(parser.feed(piece).unwrap());
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0], &resp);
    }

    #[test]
    fn chunked_encoding_round_trip(body in arb_body(), chunk_size in 1usize..300, feed in 1usize..71) {
        let encoded = chunk_body(&body, chunk_size);
        let head = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n";
        let wire = [head.to_vec(), encoded.to_vec()].concat();
        let mut parser = ResponseParser::new();
        parser.expect_head(false);
        let mut got = Vec::new();
        for piece in wire.chunks(feed) {
            got.extend(parser.feed(piece).unwrap());
        }
        prop_assert_eq!(got.len(), 1);
        prop_assert_eq!(&got[0].body[..], &body[..]);
    }

    #[test]
    fn url_round_trip(
        host in "[a-z0-9.]{1,20}",
        port in 1u16..65535,
        target in arb_target(),
    ) {
        prop_assume!(!host.starts_with('.') && !host.ends_with('.'));
        let text = format!("http://{host}:{port}{target}");
        let url = mm_http::Url::parse(&text).unwrap();
        prop_assert_eq!(url.to_string(), text);
    }

    #[test]
    fn parser_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..500)) {
        let mut p = RequestParser::new();
        let _ = p.feed(&data); // may Err, must not panic
        let mut p = ResponseParser::new();
        let _ = p.feed(&data);
    }
}
