//! Incremental HTTP/1.1 parsers.
//!
//! These are push parsers: feed them bytes as they arrive off a TCP stream
//! and collect complete messages. The RecordShell proxy runs one of each
//! direction per connection; ReplayShell's servers and the browser use them
//! too, so correctness here is load-bearing for the whole toolkit.
//!
//! Supported body framings: `Content-Length`, `Transfer-Encoding: chunked`
//! (with trailers), bodyless statuses (1xx/204/304 and HEAD responses), and
//! read-until-close for HTTP/1.0-style responses.

use bytes::{Bytes, BytesMut};

use crate::headers::HeaderMap;
use crate::message::{Method, Request, Response, Version};

/// Parse failure: the byte stream is not valid HTTP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HTTP parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Find `\r\n\r\n`, returning the offset just past it.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Split raw header bytes (without the trailing blank line) into the start
/// line and a HeaderMap.
fn parse_head(raw: &[u8]) -> Result<(String, HeaderMap), ParseError> {
    let text = std::str::from_utf8(raw).map_err(|_| ParseError("non-UTF8 header".into()))?;
    let mut lines = text.split("\r\n");
    let start = lines.next().unwrap_or("").to_string();
    if start.is_empty() {
        return err("empty start line");
    }
    let mut headers = HeaderMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError(format!("malformed header line: {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return err(format!("malformed header name: {name:?}"));
        }
        headers.append(name, value.trim());
    }
    Ok((start, headers))
}

/// Body-framing state shared by both parsers.
#[derive(Debug)]
enum BodyState {
    /// Exactly `remaining` bytes left.
    Sized { remaining: u64 },
    /// Chunked; sub-state machine below.
    Chunked(ChunkState),
    /// Read until the peer closes (HTTP/1.0 responses without length).
    UntilClose,
    /// No body at all.
    None,
}

#[derive(Debug)]
enum ChunkState {
    /// Awaiting a `SIZE\r\n` line.
    Size,
    /// `remaining` bytes of the current chunk, then CRLF.
    Data { remaining: u64 },
    /// Awaiting the CRLF after chunk data.
    DataCrlf,
    /// Awaiting trailers terminated by CRLF.
    Trailers,
}

/// What the framing decision needs to know about the message head.
struct Framing {
    body: BodyState,
}

fn response_framing(
    status: u16,
    headers: &HeaderMap,
    responding_to_head: bool,
) -> Result<Framing, ParseError> {
    if Response::bodyless_status(status) || responding_to_head {
        return Ok(Framing {
            body: BodyState::None,
        });
    }
    if headers.is_chunked() {
        return Ok(Framing {
            body: BodyState::Chunked(ChunkState::Size),
        });
    }
    if let Some(n) = headers.content_length() {
        return Ok(Framing {
            body: if n == 0 {
                BodyState::None
            } else {
                BodyState::Sized { remaining: n }
            },
        });
    }
    Ok(Framing {
        body: BodyState::UntilClose,
    })
}

fn request_framing(headers: &HeaderMap) -> Result<Framing, ParseError> {
    if headers.is_chunked() {
        return Ok(Framing {
            body: BodyState::Chunked(ChunkState::Size),
        });
    }
    match headers.content_length() {
        Some(0) | None => Ok(Framing {
            body: BodyState::None,
        }),
        Some(n) => Ok(Framing {
            body: BodyState::Sized { remaining: n },
        }),
    }
}

/// Generic incremental machinery shared by request/response parsers.
struct Machine {
    buf: BytesMut,
    /// Parsed head awaiting its body.
    body: Option<BodyState>,
    body_acc: BytesMut,
}

impl Machine {
    fn new() -> Self {
        Machine {
            buf: BytesMut::new(),
            body: None,
            body_acc: BytesMut::new(),
        }
    }

    fn push(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Try to advance the body machine; returns Some(body) when complete.
    fn drive_body(&mut self) -> Result<Option<Bytes>, ParseError> {
        loop {
            let state = match self.body.as_mut() {
                None => return Ok(None),
                Some(s) => s,
            };
            match state {
                BodyState::None => {
                    self.body = None;
                    return Ok(Some(Bytes::new()));
                }
                BodyState::Sized { remaining } => {
                    let take = (*remaining).min(self.buf.len() as u64) as usize;
                    if take > 0 {
                        self.body_acc.extend_from_slice(&self.buf.split_to(take));
                        *remaining -= take as u64;
                    }
                    if *remaining == 0 {
                        self.body = None;
                        return Ok(Some(self.body_acc.split().freeze()));
                    }
                    return Ok(None); // need more bytes
                }
                BodyState::UntilClose => {
                    self.body_acc.extend_from_slice(&self.buf.split());
                    return Ok(None); // completes only on EOF
                }
                BodyState::Chunked(chunk) => match chunk {
                    ChunkState::Size => {
                        let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") else {
                            return Ok(None);
                        };
                        let line = self.buf.split_to(pos + 2);
                        let size_text = std::str::from_utf8(&line[..pos])
                            .map_err(|_| ParseError("bad chunk size".into()))?;
                        // Chunk extensions after ';' are ignored per RFC.
                        let size_text = size_text.split(';').next().unwrap().trim();
                        let size = u64::from_str_radix(size_text, 16)
                            .map_err(|_| ParseError(format!("bad chunk size {size_text:?}")))?;
                        *chunk = if size == 0 {
                            ChunkState::Trailers
                        } else {
                            ChunkState::Data { remaining: size }
                        };
                    }
                    ChunkState::Data { remaining } => {
                        let take = (*remaining).min(self.buf.len() as u64) as usize;
                        if take > 0 {
                            self.body_acc.extend_from_slice(&self.buf.split_to(take));
                            *remaining -= take as u64;
                        }
                        if *remaining == 0 {
                            *chunk = ChunkState::DataCrlf;
                        } else {
                            return Ok(None);
                        }
                    }
                    ChunkState::DataCrlf => {
                        if self.buf.len() < 2 {
                            return Ok(None);
                        }
                        if &self.buf[..2] != b"\r\n" {
                            return err("missing CRLF after chunk data");
                        }
                        let _ = self.buf.split_to(2);
                        *chunk = ChunkState::Size;
                    }
                    ChunkState::Trailers => {
                        // Trailers end at an empty line. We discard them
                        // (the recorder stores the de-chunked body with a
                        // Content-Length).
                        let Some(pos) = self.buf.windows(2).position(|w| w == b"\r\n") else {
                            return Ok(None);
                        };
                        let line = self.buf.split_to(pos + 2);
                        if pos == 0 {
                            // Empty line: done.
                            self.body = None;
                            return Ok(Some(self.body_acc.split().freeze()));
                        }
                        let _ = line; // discard trailer field
                    }
                },
            }
        }
    }
}

/// Incremental parser for a stream of HTTP requests (one connection).
pub struct RequestParser {
    machine: Machine,
    pending_head: Option<(Method, String, Version, HeaderMap)>,
    complete: Vec<Request>,
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RequestParser {
    /// Fresh parser.
    pub fn new() -> Self {
        RequestParser {
            machine: Machine::new(),
            pending_head: None,
            complete: Vec::new(),
        }
    }

    /// Feed bytes; returns any requests completed by this feed.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Request>, ParseError> {
        self.machine.push(data);
        loop {
            if self.pending_head.is_none() {
                let Some(end) = find_header_end(&self.machine.buf) else {
                    break;
                };
                let head_bytes = self.machine.buf.split_to(end);
                let (start, headers) = parse_head(&head_bytes[..end - 4])?;
                let mut parts = start.split(' ');
                let (m, t, v) = (parts.next(), parts.next(), parts.next());
                let (Some(m), Some(t), Some(v)) = (m, t, v) else {
                    return err(format!("malformed request line: {start:?}"));
                };
                let version = Version::from_token(v)
                    .ok_or_else(|| ParseError(format!("bad version {v:?}")))?;
                let framing = request_framing(&headers)?;
                self.machine.body = Some(framing.body);
                self.pending_head = Some((Method::from_token(m), t.to_string(), version, headers));
            }
            match self.machine.drive_body()? {
                Some(body) => {
                    let (method, target, version, headers) = self.pending_head.take().unwrap();
                    self.complete.push(Request {
                        method,
                        target,
                        version,
                        headers,
                        body,
                    });
                }
                None => break,
            }
        }
        Ok(std::mem::take(&mut self.complete))
    }

    /// Bytes buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.machine.buf.len()
    }
}

/// Incremental parser for a stream of HTTP responses (one connection).
///
/// The caller must report whether each expected response answers a HEAD
/// request (HEAD responses carry headers describing a body that is not
/// sent) via [`ResponseParser::expect_head`].
pub struct ResponseParser {
    machine: Machine,
    pending_head: Option<(Version, u16, String, HeaderMap)>,
    /// FIFO of "is the next response to a HEAD request?" flags.
    head_queue: std::collections::VecDeque<bool>,
    complete: Vec<Response>,
}

impl Default for ResponseParser {
    fn default() -> Self {
        Self::new()
    }
}

impl ResponseParser {
    /// Fresh parser.
    pub fn new() -> Self {
        ResponseParser {
            machine: Machine::new(),
            pending_head: None,
            head_queue: std::collections::VecDeque::new(),
            complete: Vec::new(),
        }
    }

    /// Record that the next pipelined response answers a HEAD (`true`) or
    /// non-HEAD (`false`) request. Call once per request sent.
    pub fn expect_head(&mut self, is_head: bool) {
        self.head_queue.push_back(is_head);
    }

    /// Feed bytes; returns any responses completed by this feed.
    pub fn feed(&mut self, data: &[u8]) -> Result<Vec<Response>, ParseError> {
        self.machine.push(data);
        loop {
            if self.pending_head.is_none() {
                let Some(end) = find_header_end(&self.machine.buf) else {
                    break;
                };
                let head_bytes = self.machine.buf.split_to(end);
                let (start, headers) = parse_head(&head_bytes[..end - 4])?;
                let mut parts = start.splitn(3, ' ');
                let (v, code, reason) = (parts.next(), parts.next(), parts.next());
                let (Some(v), Some(code)) = (v, code) else {
                    return err(format!("malformed status line: {start:?}"));
                };
                let version = Version::from_token(v)
                    .ok_or_else(|| ParseError(format!("bad version {v:?}")))?;
                let status: u16 = code
                    .parse()
                    .map_err(|_| ParseError(format!("bad status {code:?}")))?;
                let to_head = self.head_queue.pop_front().unwrap_or(false);
                let framing = response_framing(status, &headers, to_head)?;
                self.machine.body = Some(framing.body);
                self.pending_head =
                    Some((version, status, reason.unwrap_or("").to_string(), headers));
            }
            match self.machine.drive_body()? {
                Some(body) => {
                    let (version, status, reason, headers) = self.pending_head.take().unwrap();
                    self.complete.push(Response {
                        version,
                        status,
                        reason,
                        headers,
                        body,
                    });
                }
                None => break,
            }
        }
        Ok(std::mem::take(&mut self.complete))
    }

    /// The peer closed the connection: completes an `UntilClose` body.
    pub fn finish(&mut self) -> Result<Option<Response>, ParseError> {
        if let Some(BodyState::UntilClose) = self.machine.body {
            self.machine.body = None;
            let body = self.machine.body_acc.split().freeze();
            let (version, status, reason, headers) = self
                .pending_head
                .take()
                .expect("UntilClose implies a pending head");
            return Ok(Some(Response {
                version,
                status,
                reason,
                headers,
                body,
            }));
        }
        if self.pending_head.is_some() || !self.machine.buf.is_empty() {
            return err("connection closed mid-message");
        }
        Ok(None)
    }

    /// Bytes buffered but not yet consumed by a complete message.
    pub fn buffered(&self) -> usize {
        self.machine.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_get_parses() {
        let mut p = RequestParser::new();
        let reqs = p
            .feed(b"GET /index.html HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n")
            .unwrap();
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.target, "/index.html");
        assert_eq!(r.host(), Some("example.com"));
        assert!(r.body.is_empty());
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn request_split_across_feeds() {
        let mut p = RequestParser::new();
        let wire = b"POST /submit HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nhello";
        for chunk in wire.chunks(3) {
            let done = p.feed(chunk).unwrap();
            if !done.is_empty() {
                assert_eq!(done[0].body, Bytes::from_static(b"hello"));
                return;
            }
        }
        panic!("request never completed");
    }

    #[test]
    fn pipelined_requests() {
        let mut p = RequestParser::new();
        let wire = b"GET /a HTTP/1.1\r\nHost: h\r\n\r\nGET /b HTTP/1.1\r\nHost: h\r\n\r\n";
        let reqs = p.feed(wire).unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].target, "/a");
        assert_eq!(reqs[1].target, "/b");
    }

    #[test]
    fn sized_response_parses() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let resps = p
            .feed(b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\nContent-Type: text/plain\r\n\r\nabc")
            .unwrap();
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].status, 200);
        assert_eq!(resps[0].reason, "OK");
        assert_eq!(&resps[0].body[..], b"abc");
    }

    #[test]
    fn chunked_response_parses() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n";
        let resps = p.feed(wire).unwrap();
        assert_eq!(resps.len(), 1);
        assert_eq!(&resps[0].body[..], b"Wikipedia");
    }

    #[test]
    fn chunked_with_extensions_and_trailers() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     3;ext=1\r\nfoo\r\n0\r\nX-Trailer: v\r\n\r\n";
        let resps = p.feed(wire).unwrap();
        assert_eq!(&resps[0].body[..], b"foo");
    }

    #[test]
    fn chunked_split_byte_by_byte() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let wire = b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n\
                     a\r\n0123456789\r\n0\r\n\r\n";
        let mut got = Vec::new();
        for b in wire.iter() {
            got.extend(p.feed(&[*b]).unwrap());
        }
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].body[..], b"0123456789");
    }

    #[test]
    fn head_response_has_no_body() {
        let mut p = ResponseParser::new();
        p.expect_head(true);
        p.expect_head(false);
        // HEAD response advertises a length but sends no body; the next
        // response follows immediately.
        let wire = b"HTTP/1.1 200 OK\r\nContent-Length: 100\r\n\r\n\
                     HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok";
        let resps = p.feed(wire).unwrap();
        assert_eq!(resps.len(), 2);
        assert!(resps[0].body.is_empty());
        assert_eq!(&resps[1].body[..], b"ok");
    }

    #[test]
    fn bodyless_304_parses() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let resps = p
            .feed(b"HTTP/1.1 304 Not Modified\r\nETag: \"x\"\r\n\r\n")
            .unwrap();
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].status, 304);
    }

    #[test]
    fn until_close_body() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let resps = p
            .feed(b"HTTP/1.0 200 OK\r\nContent-Type: text/html\r\n\r\npartial data")
            .unwrap();
        assert!(resps.is_empty(), "body not complete until close");
        let last = p.finish().unwrap().expect("response completed by EOF");
        assert_eq!(&last.body[..], b"partial data");
    }

    #[test]
    fn eof_mid_message_is_error() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let _ = p
            .feed(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nabc")
            .unwrap();
        assert!(p.finish().is_err());
    }

    #[test]
    fn malformed_start_line_rejected() {
        let mut p = RequestParser::new();
        assert!(p.feed(b"NONSENSE\r\nHost: h\r\n\r\n").is_err());
    }

    #[test]
    fn malformed_header_rejected() {
        let mut p = RequestParser::new();
        assert!(p
            .feed(b"GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n")
            .is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut p = RequestParser::new();
        assert!(p.feed(b"GET / HTTP/2.0\r\nHost: h\r\n\r\n").is_err());
    }

    #[test]
    fn bad_chunk_size_rejected() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        assert!(p
            .feed(b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\n")
            .is_err());
    }

    #[test]
    fn reason_phrase_with_spaces() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let resps = p
            .feed(b"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        assert_eq!(resps[0].reason, "Not Found");
    }

    #[test]
    fn zero_content_length_completes_immediately() {
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let resps = p
            .feed(b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")
            .unwrap();
        assert_eq!(resps.len(), 1);
        assert!(resps[0].body.is_empty());
    }
}
