//! Minimal URL handling for the DNS-less world of record-and-replay.
//!
//! ReplayShell binds servers to the recorded IP/port, so URLs in recorded
//! bodies address hosts directly: `http://93.184.216.34:8080/path?q=1`.
//! Hostnames are also carried verbatim (the `Host` header keeps the
//! original name); resolution is the browser's concern.

use std::fmt;

/// A parsed absolute URL (scheme://host[:port]/target).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Host part, verbatim (an IP literal in replay corpora).
    pub host: String,
    /// Port (defaulted from the scheme when absent).
    pub port: u16,
    /// Origin-form target: path plus optional query, always starting `/`.
    pub target: String,
}

/// Error parsing a URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlParseError(pub String);

impl fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid URL: {}", self.0)
    }
}

impl std::error::Error for UrlParseError {}

impl Url {
    /// Parse an absolute URL. Only `http` and `https` schemes are
    /// accepted; anything else in a recorded body is not a fetchable
    /// subresource.
    pub fn parse(s: &str) -> Result<Url, UrlParseError> {
        let (scheme, rest) = s.split_once("://").ok_or_else(|| UrlParseError(s.into()))?;
        if scheme != "http" && scheme != "https" {
            return Err(UrlParseError(format!("unsupported scheme in {s:?}")));
        }
        let (authority, target) = match rest.find('/') {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, "/"),
        };
        if authority.is_empty() {
            return Err(UrlParseError(s.into()));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => (
                h.to_string(),
                p.parse::<u16>().map_err(|_| UrlParseError(s.into()))?,
            ),
            None => (
                authority.to_string(),
                if scheme == "https" { 443 } else { 80 },
            ),
        };
        if host.is_empty() {
            return Err(UrlParseError(s.into()));
        }
        Ok(Url {
            scheme: scheme.to_string(),
            host,
            port,
            target: target.to_string(),
        })
    }

    /// The path component (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// The `host:port` authority string.
    pub fn authority(&self) -> String {
        format!("{}:{}", self.host, self.port)
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}://{}:{}{}",
            self.scheme, self.host, self.port, self.target
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_url() {
        let u = Url::parse("http://10.0.0.3:8080/a/b?x=1").unwrap();
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "10.0.0.3");
        assert_eq!(u.port, 8080);
        assert_eq!(u.target, "/a/b?x=1");
        assert_eq!(u.path(), "/a/b");
        assert_eq!(u.authority(), "10.0.0.3:8080");
    }

    #[test]
    fn default_ports() {
        assert_eq!(Url::parse("http://h/").unwrap().port, 80);
        assert_eq!(Url::parse("https://h/").unwrap().port, 443);
    }

    #[test]
    fn missing_path_defaults_to_root() {
        let u = Url::parse("http://example.com").unwrap();
        assert_eq!(u.target, "/");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Url::parse("not a url").is_err());
        assert!(Url::parse("ftp://host/").is_err());
        assert!(Url::parse("http://").is_err());
        assert!(Url::parse("http://h:notaport/").is_err());
    }

    #[test]
    fn display_round_trips() {
        let u = Url::parse("https://1.2.3.4:443/x?q=2").unwrap();
        assert_eq!(u.to_string(), "https://1.2.3.4:443/x?q=2");
        assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
    }
}
