//! Case-insensitive, order-preserving HTTP header map.
//!
//! Order preservation matters for record-and-replay fidelity: replayed
//! responses should be byte-comparable to recorded ones, and real servers'
//! header order is part of that.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One header field (name, value). Name comparison is ASCII
/// case-insensitive; the original spelling is preserved.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Header {
    pub name: String,
    pub value: String,
}

/// An ordered multimap of HTTP headers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderMap {
    fields: Vec<Header>,
}

impl HeaderMap {
    /// Empty map.
    pub fn new() -> Self {
        HeaderMap::default()
    }

    /// Append a field, preserving any existing fields of the same name.
    pub fn append(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.fields.push(Header {
            name: name.into(),
            value: value.into(),
        });
    }

    /// Set a field, replacing all existing fields of the same name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.remove(name);
        self.append(name, value.into());
    }

    /// First value for `name`, case-insensitive.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
    }

    /// All values for `name`, in order.
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|h| h.name.eq_ignore_ascii_case(name))
            .map(|h| h.value.as_str())
            .collect()
    }

    /// True if any field named `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Remove all fields named `name`; returns how many were removed.
    pub fn remove(&mut self, name: &str) -> usize {
        let before = self.fields.len();
        self.fields.retain(|h| !h.name.eq_ignore_ascii_case(name));
        before - self.fields.len()
    }

    /// Number of fields (counting duplicates).
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if there are no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Iterate fields in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Header> {
        self.fields.iter()
    }

    /// Parsed `Content-Length`, if present and well-formed.
    pub fn content_length(&self) -> Option<u64> {
        self.get("content-length")
            .and_then(|v| v.trim().parse().ok())
    }

    /// True if `Transfer-Encoding` includes `chunked`.
    pub fn is_chunked(&self) -> bool {
        self.get("transfer-encoding")
            .map(|v| {
                v.split(',')
                    .any(|t| t.trim().eq_ignore_ascii_case("chunked"))
            })
            .unwrap_or(false)
    }

    /// True if `Connection: close` is declared.
    pub fn connection_close(&self) -> bool {
        self.get("connection")
            .map(|v| v.split(',').any(|t| t.trim().eq_ignore_ascii_case("close")))
            .unwrap_or(false)
    }
}

impl fmt::Display for HeaderMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for h in &self.fields {
            writeln!(f, "{}: {}", h.name, h.value)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_insensitive_get() {
        let mut h = HeaderMap::new();
        h.append("Content-Type", "text/html");
        assert_eq!(h.get("content-type"), Some("text/html"));
        assert_eq!(h.get("CONTENT-TYPE"), Some("text/html"));
        assert!(h.contains("Content-type"));
        assert!(!h.contains("content-length"));
    }

    #[test]
    fn append_keeps_duplicates_set_replaces() {
        let mut h = HeaderMap::new();
        h.append("Set-Cookie", "a=1");
        h.append("Set-Cookie", "b=2");
        assert_eq!(h.get_all("set-cookie"), vec!["a=1", "b=2"]);
        assert_eq!(h.get("set-cookie"), Some("a=1"));
        h.set("Set-Cookie", "c=3");
        assert_eq!(h.get_all("set-cookie"), vec!["c=3"]);
    }

    #[test]
    fn remove_counts() {
        let mut h = HeaderMap::new();
        h.append("X-A", "1");
        h.append("x-a", "2");
        h.append("X-B", "3");
        assert_eq!(h.remove("X-A"), 2);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn content_length_parsing() {
        let mut h = HeaderMap::new();
        assert_eq!(h.content_length(), None);
        h.set("Content-Length", " 1234 ");
        assert_eq!(h.content_length(), Some(1234));
        h.set("Content-Length", "nonsense");
        assert_eq!(h.content_length(), None);
    }

    #[test]
    fn chunked_detection() {
        let mut h = HeaderMap::new();
        assert!(!h.is_chunked());
        h.set("Transfer-Encoding", "gzip, Chunked");
        assert!(h.is_chunked());
        h.set("Transfer-Encoding", "gzip");
        assert!(!h.is_chunked());
    }

    #[test]
    fn connection_close_detection() {
        let mut h = HeaderMap::new();
        assert!(!h.connection_close());
        h.set("Connection", "keep-alive");
        assert!(!h.connection_close());
        h.set("Connection", "Close");
        assert!(h.connection_close());
    }

    #[test]
    fn display_emits_field_lines() {
        let mut h = HeaderMap::new();
        h.append("Host", "example.com");
        h.append("Accept", "*/*");
        assert_eq!(h.to_string(), "Host: example.com\nAccept: */*\n");
    }

    #[test]
    fn insertion_order_preserved() {
        let mut h = HeaderMap::new();
        for i in 0..10 {
            h.append(format!("X-{i}"), i.to_string());
        }
        let names: Vec<_> = h.iter().map(|f| f.name.clone()).collect();
        let expect: Vec<_> = (0..10).map(|i| format!("X-{i}")).collect();
        assert_eq!(names, expect);
    }
}
