//! Serialization of HTTP messages to wire bytes.

use bytes::{BufMut, Bytes, BytesMut};

use crate::message::{Request, Response};

/// Serialize a request (start line, headers, body) to wire form.
pub fn write_request(req: &Request) -> Bytes {
    let mut out = BytesMut::with_capacity(256 + req.body.len());
    out.put_slice(req.method.as_str().as_bytes());
    out.put_u8(b' ');
    out.put_slice(req.target.as_bytes());
    out.put_u8(b' ');
    out.put_slice(req.version.as_str().as_bytes());
    out.put_slice(b"\r\n");
    for h in req.headers.iter() {
        out.put_slice(h.name.as_bytes());
        out.put_slice(b": ");
        out.put_slice(h.value.as_bytes());
        out.put_slice(b"\r\n");
    }
    out.put_slice(b"\r\n");
    out.put_slice(&req.body);
    out.freeze()
}

/// Serialize a response to wire form. If the headers declare
/// `Transfer-Encoding: chunked`, the body is emitted as a single chunk plus
/// terminator (the recorded body is already de-chunked).
pub fn write_response(resp: &Response) -> Bytes {
    let mut out = BytesMut::with_capacity(256 + resp.body.len());
    out.put_slice(resp.version.as_str().as_bytes());
    out.put_u8(b' ');
    out.put_slice(resp.status.to_string().as_bytes());
    out.put_u8(b' ');
    out.put_slice(resp.reason.as_bytes());
    out.put_slice(b"\r\n");
    for h in resp.headers.iter() {
        out.put_slice(h.name.as_bytes());
        out.put_slice(b": ");
        out.put_slice(h.value.as_bytes());
        out.put_slice(b"\r\n");
    }
    out.put_slice(b"\r\n");
    if resp.headers.is_chunked() && !resp.body.is_empty() {
        out.put_slice(format!("{:x}\r\n", resp.body.len()).as_bytes());
        out.put_slice(&resp.body);
        out.put_slice(b"\r\n0\r\n\r\n");
    } else {
        out.put_slice(&resp.body);
    }
    out.freeze()
}

/// Encode a body as chunked transfer coding with the given chunk size
/// (used by tests and by the live-web model to emulate streaming servers).
pub fn chunk_body(body: &[u8], chunk_size: usize) -> Bytes {
    assert!(chunk_size > 0, "chunk size must be positive");
    let mut out = BytesMut::with_capacity(body.len() + 16 * (body.len() / chunk_size + 2));
    for chunk in body.chunks(chunk_size) {
        out.put_slice(format!("{:x}\r\n", chunk.len()).as_bytes());
        out.put_slice(chunk);
        out.put_slice(b"\r\n");
    }
    out.put_slice(b"0\r\n\r\n");
    out.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Method, Version};
    use crate::parser::{RequestParser, ResponseParser};

    #[test]
    fn request_round_trip() {
        let mut req = Request::get("/a/b?q=1", "example.com");
        req.headers.append("Accept-Encoding", "gzip");
        let wire = write_request(&req);
        let mut p = RequestParser::new();
        let back = p.feed(&wire).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], req);
    }

    #[test]
    fn request_with_body_round_trip() {
        let mut req = Request::get("/post", "h");
        req.method = Method::Post;
        req.body = Bytes::from_static(b"payload");
        req.headers.set("Content-Length", "7");
        let wire = write_request(&req);
        let mut p = RequestParser::new();
        let back = p.feed(&wire).unwrap();
        assert_eq!(back[0].body, req.body);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::ok(Bytes::from_static(b"<html></html>"), "text/html");
        let wire = write_response(&resp);
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let back = p.feed(&wire).unwrap();
        assert_eq!(back.len(), 1);
        assert_eq!(back[0], resp);
    }

    #[test]
    fn chunked_response_round_trip() {
        let mut resp = Response::ok(Bytes::from_static(b"streaming body"), "text/plain");
        resp.headers.remove("Content-Length");
        resp.headers.set("Transfer-Encoding", "chunked");
        let wire = write_response(&resp);
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let back = p.feed(&wire).unwrap();
        assert_eq!(&back[0].body[..], b"streaming body");
    }

    #[test]
    fn http10_version_emitted() {
        let mut req = Request::get("/", "h");
        req.version = Version::Http10;
        let wire = write_request(&req);
        assert!(wire.starts_with(b"GET / HTTP/1.0\r\n"));
    }

    #[test]
    fn chunk_body_parses_back() {
        let body: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let chunked = chunk_body(&body, 77);
        let wire = [
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
            chunked.to_vec(),
        ]
        .concat();
        let mut p = ResponseParser::new();
        p.expect_head(false);
        let back = p.feed(&wire).unwrap();
        assert_eq!(&back[0].body[..], &body[..]);
    }

    #[test]
    fn empty_body_chunk_encoding() {
        let chunked = chunk_body(b"", 10);
        assert_eq!(&chunked[..], b"0\r\n\r\n");
    }
}
