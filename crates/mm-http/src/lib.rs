//! # mm-http — HTTP/1.1 for record-and-replay
//!
//! Message model ([`message`]), ordered case-insensitive headers
//! ([`headers`]), incremental push parsers for request and response streams
//! ([`parser`]) and wire serialization ([`serialize`]).
//!
//! The RecordShell proxy, ReplayShell servers, and the browser model all
//! speak HTTP through this crate, so parse∘serialize round-trip fidelity is
//! covered by both unit and property tests.

pub mod headers;
pub mod message;
pub mod parser;
pub mod serialize;
pub mod url;

pub use headers::{Header, HeaderMap};
pub use message::{Method, Request, Response, Version};
pub use parser::{ParseError, RequestParser, ResponseParser};
pub use serialize::{chunk_body, write_request, write_response};
pub use url::{Url, UrlParseError};
