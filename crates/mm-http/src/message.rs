//! HTTP/1.1 request and response types.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

use crate::headers::HeaderMap;

/// Request methods the toolkit understands (the record corpus only ever
/// contains these; anything else is carried as `Extension`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Method {
    Get,
    Head,
    Post,
    Put,
    Delete,
    Options,
    /// Any other token, verbatim.
    Extension(String),
}

impl Method {
    /// Parse a method token.
    pub fn from_token(tok: &str) -> Method {
        match tok {
            "GET" => Method::Get,
            "HEAD" => Method::Head,
            "POST" => Method::Post,
            "PUT" => Method::Put,
            "DELETE" => Method::Delete,
            "OPTIONS" => Method::Options,
            other => Method::Extension(other.to_string()),
        }
    }

    /// The wire token.
    pub fn as_str(&self) -> &str {
        match self {
            Method::Get => "GET",
            Method::Head => "HEAD",
            Method::Post => "POST",
            Method::Put => "PUT",
            Method::Delete => "DELETE",
            Method::Options => "OPTIONS",
            Method::Extension(s) => s,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Protocol version. Only 1.0 and 1.1 appear in the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Version {
    Http10,
    #[default]
    Http11,
}

impl Version {
    /// The wire form, e.g. `HTTP/1.1`.
    pub fn as_str(&self) -> &'static str {
        match self {
            Version::Http10 => "HTTP/1.0",
            Version::Http11 => "HTTP/1.1",
        }
    }

    /// Parse the wire form.
    pub fn from_token(tok: &str) -> Option<Version> {
        match tok {
            "HTTP/1.0" => Some(Version::Http10),
            "HTTP/1.1" => Some(Version::Http11),
            _ => None,
        }
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An HTTP request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Request {
    pub method: Method,
    /// Origin-form request target: path plus optional `?query`.
    pub target: String,
    pub version: Version,
    pub headers: HeaderMap,
    #[serde(with = "crate::message::serde_bytes")]
    pub body: Bytes,
}

impl Request {
    /// A GET request for `target` on `host`, HTTP/1.1.
    pub fn get(target: impl Into<String>, host: impl Into<String>) -> Request {
        let mut headers = HeaderMap::new();
        headers.append("Host", host.into());
        Request {
            method: Method::Get,
            target: target.into(),
            version: Version::Http11,
            headers,
            body: Bytes::new(),
        }
    }

    /// The `Host` header value, if present.
    pub fn host(&self) -> Option<&str> {
        self.headers.get("host")
    }

    /// Path component of the target (before `?`).
    pub fn path(&self) -> &str {
        match self.target.split_once('?') {
            Some((p, _)) => p,
            None => &self.target,
        }
    }

    /// Query component of the target (after `?`), if any.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }

    /// Does this request expect the connection to persist afterwards?
    pub fn keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => !self.headers.connection_close(),
            Version::Http10 => self
                .headers
                .get("connection")
                .map(|v| v.eq_ignore_ascii_case("keep-alive"))
                .unwrap_or(false),
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    pub version: Version,
    pub status: u16,
    pub reason: String,
    pub headers: HeaderMap,
    #[serde(with = "crate::message::serde_bytes")]
    pub body: Bytes,
}

impl Response {
    /// A 200 OK with the given body and content type, Content-Length set.
    pub fn ok(body: Bytes, content_type: &str) -> Response {
        let mut headers = HeaderMap::new();
        headers.append("Content-Type", content_type);
        headers.append("Content-Length", body.len().to_string());
        Response {
            version: Version::Http11,
            status: 200,
            reason: "OK".to_string(),
            headers,
            body,
        }
    }

    /// A bodyless response with the given status.
    pub fn status_only(status: u16, reason: &str) -> Response {
        let mut headers = HeaderMap::new();
        headers.append("Content-Length", "0");
        Response {
            version: Version::Http11,
            status,
            reason: reason.to_string(),
            headers,
            body: Bytes::new(),
        }
    }

    /// 404 Not Found — what ReplayShell's matcher returns when no recorded
    /// pair matches.
    pub fn not_found() -> Response {
        Response::status_only(404, "Not Found")
    }

    /// True for 1xx, 204 and 304, which never carry a body.
    pub fn bodyless_status(status: u16) -> bool {
        (100..200).contains(&status) || status == 204 || status == 304
    }
}

/// serde helper: encode `Bytes` as base64-free Vec<u8> (JSON arrays would
/// be huge; we store as a lossless latin-1 string for readability of text
/// bodies, falling back transparently for binary).
pub(crate) mod serde_bytes {
    use bytes::Bytes;
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(b: &Bytes, s: S) -> Result<S::Ok, S::Error> {
        // Lossless: every byte maps to one char in U+0000..U+00FF.
        let text: String = b.iter().map(|&x| x as char).collect();
        s.serialize_str(&text)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Bytes, D::Error> {
        let text = String::deserialize(d)?;
        let out: Result<Vec<u8>, _> = text
            .chars()
            .map(|c| {
                let v = c as u32;
                if v <= 0xFF {
                    Ok(v as u8)
                } else {
                    Err(serde::de::Error::custom("non-latin1 char in body"))
                }
            })
            .collect();
        Ok(Bytes::from(out?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn method_tokens_round_trip() {
        for tok in ["GET", "HEAD", "POST", "PUT", "DELETE", "OPTIONS", "PATCH"] {
            assert_eq!(Method::from_token(tok).as_str(), tok);
        }
    }

    #[test]
    fn request_path_and_query() {
        let r = Request::get("/a/b?x=1&y=2", "example.com");
        assert_eq!(r.path(), "/a/b");
        assert_eq!(r.query(), Some("x=1&y=2"));
        assert_eq!(r.host(), Some("example.com"));
        let bare = Request::get("/plain", "example.com");
        assert_eq!(bare.path(), "/plain");
        assert_eq!(bare.query(), None);
    }

    #[test]
    fn keep_alive_defaults() {
        let mut r = Request::get("/", "h");
        assert!(r.keep_alive(), "1.1 defaults to persistent");
        r.headers.set("Connection", "close");
        assert!(!r.keep_alive());
        r.version = Version::Http10;
        r.headers.remove("Connection");
        assert!(!r.keep_alive(), "1.0 defaults to close");
        r.headers.set("Connection", "Keep-Alive");
        assert!(r.keep_alive());
    }

    #[test]
    fn response_constructors() {
        let ok = Response::ok(Bytes::from_static(b"hi"), "text/plain");
        assert_eq!(ok.status, 200);
        assert_eq!(ok.headers.content_length(), Some(2));
        let nf = Response::not_found();
        assert_eq!(nf.status, 404);
        assert!(nf.body.is_empty());
    }

    #[test]
    fn bodyless_statuses() {
        assert!(Response::bodyless_status(101));
        assert!(Response::bodyless_status(204));
        assert!(Response::bodyless_status(304));
        assert!(!Response::bodyless_status(200));
        assert!(!Response::bodyless_status(404));
    }

    #[test]
    fn serde_round_trip_binary_body() {
        let body: Vec<u8> = (0..=255u8).collect();
        let resp = Response::ok(Bytes::from(body.clone()), "application/octet-stream");
        let json = serde_json::to_string(&resp).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(&back.body[..], &body[..]);
        assert_eq!(back.headers, resp.headers);
    }
}
