//! Long-lived serving soak: one replay world, open-loop session arrivals.
//!
//! Where [`crate::harness::run_page_load`] measures a single pristine
//! load and [`crate::fleet::run_fleet`] a fixed population, [`run_soak`]
//! keeps ONE multi-origin replay world serving for simulated hours:
//! browser sessions arrive open-loop (Poisson), load the page, tear
//! their connections down, and leave. The point is production posture,
//! not a figure — the harness reports throughput (requests/sec), tail
//! latency, and the resource high-water marks that would betray a leak
//! in a real deployment: server connection-table occupancy, client
//! socket counts, retransmission-queue and SACK-scoreboard sizes.
//!
//! Clients come from a fixed slot pool of `max_live_sessions` hosts
//! (reused across sessions, like a load balancer's port pool); arrivals
//! that find the pool exhausted are shed and counted. A periodic
//! maintenance pass samples occupancy, folds per-socket [`TcpStats`]
//! high-water marks, and reaps closed connections on every host —
//! so a world that fails to release connections shows up as a
//! monotonically climbing high-water mark instead of an OOM.
//!
//! Everything observable lands in the caller's [`Registry`]: session
//! counters, occupancy gauges, a PLT histogram, per-direction qdisc
//! instruments when a link shell is configured, and the full
//! `tcp_*` counter set (a [`RegistrySink`] is installed into the
//! world's TCP configs unless the caller supplied an explicit sink).
//!
//! [`TcpStats`]: mm_net::TcpStats

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

use mm_browser::{Browser, BrowserConfig, PageLoadResult, ProtocolMode, Resolver};
use mm_metrics::{Counter, MetricsHandle, Registry, RegistrySink, LATENCY_BUCKETS_S};
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr, TcpConfig};
use mm_record::StoredSite;
use mm_replay::{ReplayConfig, ReplayShell, ServerProtocol};
use mm_shells::{InstrumentedQdisc, ShellStack};
use mm_sim::dist::{Distribution, Exponential};
use mm_sim::{RngStream, SimDuration, Simulator, Summary, Timestamp};

use crate::harness::LinkSpec;

/// How long after the arrival window closes the maintenance loop keeps
/// running, waiting for in-flight sessions to drain. Bounds simulated
/// time even if a session wedges.
const DRAIN_GRACE: SimDuration = SimDuration::from_secs(300);

/// Everything that defines one soak run.
pub struct SoakSpec<'a> {
    /// The recorded site the world serves.
    pub site: &'a StoredSite,
    /// Replay topology and server think time.
    pub replay: ReplayConfig,
    /// Browser parameters for every session.
    pub browser: BrowserConfig,
    /// TCP configuration for every host (None = defaults). A metrics
    /// sink already present here wins over the soak's own registry sink.
    pub tcp: Option<TcpConfig>,
    /// Fixed one-way propagation delay (None = none).
    pub delay: Option<SimDuration>,
    /// Trace-driven bottleneck link (None = unconstrained). Its qdiscs
    /// are wrapped in [`InstrumentedQdisc`], so backlog/sojourn/drop
    /// metrics land in the registry.
    pub link: Option<LinkSpec>,
    /// Mean of the exponential inter-arrival time between sessions.
    pub arrival_mean: SimDuration,
    /// Length of the arrival window in simulated time. Sessions in
    /// flight at the end are given [`DRAIN_GRACE`] to finish.
    pub duration: SimDuration,
    /// Cadence of the maintenance pass (occupancy sampling + reaping).
    pub reap_interval: SimDuration,
    /// Client slot-pool size: the admission limit on concurrent
    /// sessions. Arrivals beyond it are shed, not queued (open loop).
    pub max_live_sessions: usize,
    /// Seed for the arrival process (and anything stochastic below).
    pub seed: u64,
}

impl<'a> SoakSpec<'a> {
    /// A soak with conservative defaults: 10-minute window, one
    /// session every 2 s on average, 20 ms delay shell, 64 slots.
    pub fn new(site: &'a StoredSite) -> SoakSpec<'a> {
        SoakSpec {
            site,
            replay: ReplayConfig::default(),
            browser: BrowserConfig::default(),
            tcp: None,
            delay: Some(SimDuration::from_millis(20)),
            link: None,
            arrival_mean: SimDuration::from_secs(2),
            duration: SimDuration::from_secs(600),
            reap_interval: SimDuration::from_secs(5),
            max_live_sessions: 64,
            seed: 0,
        }
    }
}

/// Everything measured from one soak run.
#[derive(Debug, Clone)]
pub struct SoakResult {
    /// Sessions admitted into the world.
    pub sessions_started: u64,
    /// Sessions whose page load completed.
    pub sessions_completed: u64,
    /// Arrivals shed because the slot pool was exhausted.
    pub sessions_shed: u64,
    /// Resources fetched across all completed sessions.
    pub resources_fetched: u64,
    /// Failed fetches across all completed sessions.
    pub failures: u64,
    /// Resources fetched per simulated second (over the whole run).
    pub requests_per_sec: f64,
    /// Session page-load-time percentiles, milliseconds.
    pub plt_p50_ms: f64,
    pub plt_p95_ms: f64,
    pub plt_p99_ms: f64,
    /// High-water mark of total server-side connection-table occupancy,
    /// sampled every `reap_interval`.
    pub server_conn_high_water: usize,
    /// Server-side connections still tabled when the world drained.
    pub server_conns_final: usize,
    /// High-water mark of total client-pool socket occupancy.
    pub client_socket_high_water: usize,
    /// Client-pool sockets still tabled when the world drained.
    pub client_sockets_final: usize,
    /// Largest retransmission queue any socket ever held (entries).
    pub max_retx_queue: u64,
    /// Largest SACK scoreboard any socket ever held (ranges).
    pub max_scoreboard_ranges: u64,
    /// Virtual time at which the last event ran.
    pub completed_at: SimDuration,
    /// Per-origin request breakdown, sorted by origin. An origin is the
    /// authority of a resource URL (`10.0.0.3:8080`), i.e. one replay
    /// server — so a single hot or slow origin stands out instead of
    /// hiding inside the world-wide aggregates.
    pub per_origin: Vec<OriginBreakdown>,
}

/// One origin's share of a soak: request counts and the service-time
/// distribution (queued→finished per resource) of its successful
/// fetches.
#[derive(Debug, Clone)]
pub struct OriginBreakdown {
    /// URL authority (`host[:port]`) of the origin.
    pub origin: String,
    /// Resources requested from this origin (including failures).
    pub requests: u64,
    /// Requests that failed.
    pub failures: u64,
    /// Body bytes served by this origin.
    pub body_bytes: u64,
    /// Service-time percentiles (ms) over successful requests.
    pub svc_p50_ms: f64,
    pub svc_p95_ms: f64,
    pub svc_p99_ms: f64,
}

/// `http://10.0.0.3:8080/x/y` → `10.0.0.3:8080`.
fn origin_of(url: &str) -> &str {
    let rest = url.split_once("://").map_or(url, |(_, rest)| rest);
    rest.split('/').next().unwrap_or(rest)
}

/// Per-origin accumulator folded across sessions.
#[derive(Default)]
struct OriginAcc {
    requests: u64,
    failures: u64,
    body_bytes: u64,
    svc_ms: Vec<f64>,
}

/// Client host address for pool slot `i` (100.66/16 — clear of the
/// harness's 100.64.0/24 browser and the fleet's 100.64/16 plan).
fn slot_ip(i: usize) -> IpAddr {
    assert!(i < 200 * 200, "soak pool larger than the address plan");
    IpAddr::new(100, 66, (i / 200) as u8, (2 + i % 200) as u8)
}

/// Session counters registered up front so the exported snapshot shows
/// every series even when its count is zero.
struct SoakCounters {
    started: Counter,
    completed: Counter,
    shed: Counter,
    resources: Counter,
    failures: Counter,
}

/// The shared world: everything a session start/finish or maintenance
/// pass needs, behind one `Rc` threaded through simulator callbacks.
struct SoakWorld {
    shell: Rc<ReplayShell>,
    resolver: Resolver,
    inner_ns: Namespace,
    ids: PacketIdGen,
    browser_cfg: BrowserConfig,
    root_url: String,
    /// End of the arrival window.
    end: Timestamp,
    /// Hard stop for the maintenance loop (`end + DRAIN_GRACE`).
    horizon: Timestamp,
    arrival: Exponential,
    rng: RefCell<RngStream>,
    reap_interval: SimDuration,
    registry: Registry,
    counters: SoakCounters,
    /// Pool slots not currently running a session.
    free_slots: RefCell<Vec<usize>>,
    /// Per-slot client hosts, created lazily and reused across sessions.
    client_hosts: RefCell<Vec<Option<Host>>>,
    live: Cell<usize>,
    plts_ms: RefCell<Vec<f64>>,
    per_origin: RefCell<BTreeMap<String, OriginAcc>>,
    server_conn_high: Cell<usize>,
    client_socket_high: Cell<usize>,
    max_retx_queue: Cell<u64>,
    max_scoreboard_ranges: Cell<u64>,
}

impl SoakWorld {
    /// Admit one session if a pool slot is free; shed it otherwise.
    fn start_session(self: &Rc<Self>, sim: &mut Simulator) {
        let Some(slot) = self.free_slots.borrow_mut().pop() else {
            self.counters.shed.inc();
            return;
        };
        self.counters.started.inc();
        self.live.set(self.live.get() + 1);

        let host = {
            let mut hosts = self.client_hosts.borrow_mut();
            match &hosts[slot] {
                Some(h) => {
                    // Reused slot: drop the previous session's dead
                    // connections before piling new ones on.
                    h.reap_closed();
                    h.clone()
                }
                None => {
                    let h = Host::new_in(slot_ip(slot), self.ids.clone(), &self.inner_ns);
                    h.enable_timer_mux();
                    hosts[slot] = Some(h.clone());
                    h
                }
            }
        };

        let browser = Browser::new(host, self.resolver.clone(), self.browser_cfg.clone());
        let world = self.clone();
        browser.navigate(sim, &self.root_url, move |sim, r| {
            world.finish_session(sim, slot, r);
        });
    }

    /// Session epilogue: account the load, close every client-side
    /// connection (driving the servers' FIN path so both ends reach
    /// `Closed` and become reapable), and free the slot.
    fn finish_session(self: &Rc<Self>, sim: &mut Simulator, slot: usize, r: PageLoadResult) {
        self.counters.completed.inc();
        self.counters.resources.add(r.resource_count() as u64);
        self.counters.failures.add(r.failures);
        self.registry
            .histogram(
                "soak_plt_seconds",
                "Session page-load-time distribution.",
                &LATENCY_BUCKETS_S,
            )
            .observe(r.plt.as_secs_f64());
        self.plts_ms.borrow_mut().push(r.plt.as_millis_f64());

        let mut per_origin = self.per_origin.borrow_mut();
        for timing in &r.resources {
            let origin = origin_of(&timing.url);
            if !per_origin.contains_key(origin) {
                per_origin.insert(origin.to_string(), OriginAcc::default());
            }
            let acc = per_origin.get_mut(origin).expect("just inserted");
            acc.requests += 1;
            if timing.failed {
                acc.failures += 1;
            } else {
                acc.body_bytes += timing.body_bytes;
                acc.svc_ms.push(
                    timing
                        .finished_at
                        .saturating_duration_since(timing.queued_at)
                        .as_millis_f64(),
                );
            }
        }
        drop(per_origin);

        let host = self.client_hosts.borrow()[slot]
            .clone()
            .expect("finished session must have a host");
        for id in host.socket_ids() {
            if let Some(h) = host.socket(id) {
                self.fold_socket_stats(&h);
                h.close(sim);
            }
        }

        self.live.set(self.live.get() - 1);
        self.free_slots.borrow_mut().push(slot);
    }

    /// Schedule the next Poisson arrival; the process stops once an
    /// arrival would land past the window.
    fn schedule_next_arrival(self: &Rc<Self>, sim: &mut Simulator) {
        let dt =
            SimDuration::from_secs_f64(self.arrival.sample(&mut self.rng.borrow_mut()).max(1e-6));
        let at = sim.now() + dt;
        if at >= self.end {
            return;
        }
        let world = self.clone();
        sim.schedule_at(at, move |sim| {
            world.start_session(sim);
            world.schedule_next_arrival(sim);
        });
    }

    /// Maintenance pass: sample occupancy into the high-water marks and
    /// gauges, fold per-socket stats, then reap closed connections on
    /// every host. Runs every `reap_interval` until the world drains
    /// (or the drain grace expires).
    fn maintain(self: &Rc<Self>, sim: &mut Simulator) {
        self.scan_and_reap();
        let now = sim.now();
        if now < self.horizon && (now < self.end || self.live.get() > 0) {
            let world = self.clone();
            sim.schedule_in(self.reap_interval, move |sim| world.maintain(sim));
        }
    }

    /// One occupancy sample + reap over the whole world. Closed sockets
    /// are scanned before removal, so lifetime stats are never lost.
    fn scan_and_reap(&self) {
        let mut server_conns = 0;
        for host in &self.shell.hosts {
            server_conns += host.socket_count();
            self.fold_host_stats(host);
            host.reap_closed();
        }
        let mut client_sockets = 0;
        for host in self.client_hosts.borrow().iter().flatten() {
            client_sockets += host.socket_count();
            self.fold_host_stats(host);
            host.reap_closed();
        }
        self.server_conn_high
            .set(self.server_conn_high.get().max(server_conns));
        self.client_socket_high
            .set(self.client_socket_high.get().max(client_sockets));
        self.registry
            .gauge(
                "soak_server_conns",
                "Server-side connection-table occupancy (sampled).",
            )
            .set(server_conns as f64);
        self.registry
            .gauge(
                "soak_client_sockets",
                "Client-pool socket occupancy (sampled).",
            )
            .set(client_sockets as f64);
        self.registry
            .gauge("soak_live_sessions", "Sessions currently in flight.")
            .set(self.live.get() as f64);
    }

    fn fold_host_stats(&self, host: &Host) {
        for id in host.socket_ids() {
            if let Some(h) = host.socket(id) {
                self.fold_socket_stats(&h);
            }
        }
    }

    fn fold_socket_stats(&self, h: &mm_net::TcpHandle) {
        let stats = h.stats();
        self.max_retx_queue
            .set(self.max_retx_queue.get().max(stats.max_retx_queue));
        self.max_scoreboard_ranges.set(
            self.max_scoreboard_ranges
                .get()
                .max(stats.max_scoreboard_ranges),
        );
    }

    /// Final server-side occupancy (post-drain, post-reap).
    fn server_conns_final(&self) -> usize {
        self.shell.hosts.iter().map(|h| h.socket_count()).sum()
    }

    /// Final client-pool occupancy (post-drain, post-reap).
    fn client_sockets_final(&self) -> usize {
        self.client_hosts
            .borrow()
            .iter()
            .flatten()
            .map(|h| h.socket_count())
            .sum()
    }
}

/// Run one soak world to completion, exporting everything observable
/// into `registry`.
pub fn run_soak(spec: &SoakSpec<'_>, registry: &Registry) -> SoakResult {
    assert!(
        spec.max_live_sessions >= 1,
        "a soak needs at least one slot"
    );
    assert!(
        spec.arrival_mean > SimDuration::ZERO,
        "arrival mean must be positive"
    );
    let mut sim = Simulator::new();
    // Event-loop profile: per-component dispatch counts and timer-heap
    // high-water, exported into the registry after the run. Profiling
    // only observes dispatch, so the soak is byte-identical either way.
    sim.enable_profiler();
    let ids = PacketIdGen::new();
    let rng = RngStream::from_seed(spec.seed);

    // Unless the caller brought an explicit sink, every host's TCP
    // stack reports into the soak registry (sinks only observe, so
    // this changes nothing but the exported metrics).
    let tcp = {
        let base = spec.tcp.clone().unwrap_or_default();
        if base.metrics.is_none() {
            base.to_builder()
                .metrics(MetricsHandle::new(RegistrySink::new(registry.clone())))
                .build()
        } else {
            base
        }
    };

    // The serving side, outermost — same protocol passthrough as the
    // single-load harness.
    let mut replay_config = spec.replay.clone();
    if let ProtocolMode::Mux(mux) = &spec.browser.protocol {
        replay_config.protocol = ServerProtocol::Mux(mux.clone());
    }
    if replay_config.tcp.is_none() {
        replay_config.tcp = Some(tcp.clone());
    }
    let shell = {
        let root_ns = mm_net::Namespace::root("replayshell");
        Rc::new(ReplayShell::new(&root_ns, spec.site, replay_config, &ids))
    };
    let root_ns = shell.ns.clone();
    shell.enable_timer_mux();

    // The emulated network, with instrumented qdiscs when a link shell
    // is present. `link_shell` builds the uplink qdisc first, so the
    // factory labels by call parity.
    let mut stack = ShellStack::new(&root_ns);
    if let Some(delay) = spec.delay {
        stack = stack.delay(delay);
    }
    if let Some(link) = &spec.link {
        let qdisc = link.qdisc;
        let sink = MetricsHandle::new(RegistrySink::new(registry.clone()));
        let builds = Cell::new(0u32);
        stack = stack.link_asymmetric(link.uplink.clone(), link.downlink.clone(), &move || {
            let dir = if builds.get().is_multiple_of(2) {
                "up"
            } else {
                "down"
            };
            builds.set(builds.get() + 1);
            Box::new(InstrumentedQdisc::new(qdisc.build(), sink.clone(), dir))
        });
    }
    let inner_ns = stack.innermost();

    let resolver: Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &mm_http::Url| {
            let ip: IpAddr = url
                .host
                .parse()
                .expect("replay corpora address hosts by IP literal");
            shell.resolve(SocketAddr::new(ip, url.port))
        })
    };

    let mut browser_cfg = spec.browser.clone();
    if browser_cfg.tcp.is_none() {
        browser_cfg.tcp = Some(tcp);
    }
    // Per-phase duration histograms (`soak_phase_*_seconds`): every
    // session's span stream feeds the registry instead of a buffer, so
    // the soak's Prometheus snapshot shows which phase's tail grows as
    // offered load approaches the knee.
    if browser_cfg.span.is_none() {
        browser_cfg.span = Some(mm_trace::SpanHandle::new(Rc::new(
            crate::obs::PhaseSink::new(registry.clone(), "soak"),
        )));
    }

    // Pre-register the TCP counter families the sockets report into,
    // so the exported snapshot carries every series at zero instead of
    // omitting whichever events never fired during the run.
    for (name, help) in [
        ("tcp_retransmits_total", "Segments retransmitted."),
        ("tcp_fast_retransmits_total", "Fast-retransmit entries."),
        ("tcp_rto_total", "Retransmission timeouts fired."),
        ("tcp_tlp_fires_total", "Tail loss probes fired."),
        (
            "tcp_spurious_rto_undo_total",
            "Spurious timeouts detected and undone.",
        ),
    ] {
        registry.counter(name, help);
    }

    let counters = SoakCounters {
        started: registry.counter("soak_sessions_started_total", "Sessions admitted."),
        completed: registry.counter("soak_sessions_completed_total", "Sessions completed."),
        shed: registry.counter(
            "soak_sessions_shed_total",
            "Arrivals shed because the slot pool was exhausted.",
        ),
        resources: registry.counter("soak_resources_total", "Resources fetched."),
        failures: registry.counter("soak_failures_total", "Failed fetches."),
    };

    let end = Timestamp::ZERO + spec.duration;
    let world = Rc::new(SoakWorld {
        shell,
        resolver,
        inner_ns,
        ids,
        browser_cfg,
        root_url: spec.site.root_url.clone(),
        end,
        horizon: end + DRAIN_GRACE,
        arrival: Exponential::with_mean(spec.arrival_mean.as_secs_f64()),
        rng: RefCell::new(rng.fork("soak-arrivals")),
        reap_interval: spec.reap_interval,
        registry: registry.clone(),
        counters,
        free_slots: RefCell::new((0..spec.max_live_sessions).rev().collect()),
        client_hosts: RefCell::new(vec![None; spec.max_live_sessions]),
        live: Cell::new(0),
        plts_ms: RefCell::new(Vec::new()),
        per_origin: RefCell::new(BTreeMap::new()),
        server_conn_high: Cell::new(0),
        client_socket_high: Cell::new(0),
        max_retx_queue: Cell::new(0),
        max_scoreboard_ranges: Cell::new(0),
    });

    // First session at t=0, then open-loop Poisson; maintenance on its
    // own clock.
    {
        let w = world.clone();
        sim.schedule_at(Timestamp::ZERO, move |sim| {
            w.start_session(sim);
            w.schedule_next_arrival(sim);
        });
        let w = world.clone();
        sim.schedule_in(spec.reap_interval, move |sim| w.maintain(sim));
    }
    sim.run();

    // Final sweep: catch anything that closed after the last pass.
    world.scan_and_reap();

    if let Some(profile) = sim.profile() {
        profile.export(&RegistrySink::new(registry.clone()));
    }

    let per_origin: Vec<OriginBreakdown> = world
        .per_origin
        .borrow()
        .iter()
        .map(|(origin, acc)| {
            let mut svc = Summary::from_samples(acc.svc_ms.clone());
            let pct = |s: &mut Summary, p: f64| {
                if acc.svc_ms.is_empty() {
                    0.0
                } else {
                    s.percentile_interpolated(p)
                }
            };
            OriginBreakdown {
                origin: origin.clone(),
                requests: acc.requests,
                failures: acc.failures,
                body_bytes: acc.body_bytes,
                svc_p50_ms: pct(&mut svc, 50.0),
                svc_p95_ms: pct(&mut svc, 95.0),
                svc_p99_ms: pct(&mut svc, 99.0),
            }
        })
        .collect();
    for o in &per_origin {
        registry
            .gauge_with(
                "soak_origin_requests",
                "Resources requested from one origin.",
                &[("origin", &o.origin)],
            )
            .set(o.requests as f64);
        registry
            .gauge_with(
                "soak_origin_svc_p95_ms",
                "p95 service time (queued to finished) of one origin's requests.",
                &[("origin", &o.origin)],
            )
            .set(o.svc_p95_ms);
    }

    let mut plts = Summary::from_samples(world.plts_ms.borrow().clone());
    let pct = |s: &mut Summary, p: f64| {
        if world.plts_ms.borrow().is_empty() {
            0.0
        } else {
            s.percentile_interpolated(p)
        }
    };
    let completed_at = sim.now() - Timestamp::ZERO;
    let resources = world.counters.resources.get();
    let result = SoakResult {
        sessions_started: world.counters.started.get(),
        sessions_completed: world.counters.completed.get(),
        sessions_shed: world.counters.shed.get(),
        resources_fetched: resources,
        failures: world.counters.failures.get(),
        requests_per_sec: if completed_at > SimDuration::ZERO {
            resources as f64 / completed_at.as_secs_f64()
        } else {
            0.0
        },
        plt_p50_ms: pct(&mut plts, 50.0),
        plt_p95_ms: pct(&mut plts, 95.0),
        plt_p99_ms: pct(&mut plts, 99.0),
        server_conn_high_water: world.server_conn_high.get(),
        server_conns_final: world.server_conns_final(),
        client_socket_high_water: world.client_socket_high.get(),
        client_sockets_final: world.client_sockets_final(),
        max_retx_queue: world.max_retx_queue.get(),
        max_scoreboard_ranges: world.max_scoreboard_ranges.get(),
        completed_at,
        per_origin,
    };
    registry
        .gauge(
            "soak_server_conns_high_water",
            "High-water server connection-table occupancy.",
        )
        .set(result.server_conn_high_water as f64);
    registry
        .gauge(
            "soak_client_sockets_high_water",
            "High-water client-pool socket occupancy.",
        )
        .set(result.client_socket_high_water as f64);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_corpus::{materialize, plan_site, SiteParams};

    fn small_site() -> StoredSite {
        let params = SiteParams {
            servers: Some(4),
            median_objects: 8.0,
            ..SiteParams::default()
        };
        let plan = plan_site(970, &params, &mut RngStream::from_seed(23));
        materialize(&plan)
    }

    fn short_spec(site: &StoredSite) -> SoakSpec<'_> {
        let mut spec = SoakSpec::new(site);
        spec.duration = SimDuration::from_secs(30);
        spec.arrival_mean = SimDuration::from_secs(2);
        spec.reap_interval = SimDuration::from_secs(5);
        spec.max_live_sessions = 8;
        spec.seed = 77;
        spec
    }

    #[test]
    fn soak_completes_and_drains() {
        let site = small_site();
        let registry = Registry::new();
        let r = run_soak(&short_spec(&site), &registry);
        assert!(r.sessions_started >= 5, "started {}", r.sessions_started);
        assert_eq!(r.sessions_started, r.sessions_completed);
        assert_eq!(r.failures, 0);
        assert!(r.resources_fetched > 0);
        assert!(r.plt_p50_ms > 0.0);
        assert!(r.server_conn_high_water > 0);
        // The leak check: once sessions drain and the reaper runs, the
        // connection tables must be empty again.
        assert_eq!(r.server_conns_final, 0, "server conns leaked");
        assert_eq!(r.client_sockets_final, 0, "client sockets leaked");
        // And the world must not have needed the drain grace.
        assert!(r.completed_at < SimDuration::from_secs(30) + DRAIN_GRACE);
        // Per-origin breakdown: every request lands in exactly one
        // origin bucket, each with a positive service-time tail.
        assert!(!r.per_origin.is_empty());
        let origin_requests: u64 = r.per_origin.iter().map(|o| o.requests).sum();
        assert_eq!(origin_requests, r.resources_fetched);
        for o in &r.per_origin {
            assert!(o.origin.contains('.'), "authority-shaped: {}", o.origin);
            assert!(o.svc_p95_ms >= o.svc_p50_ms);
            assert!(o.svc_p50_ms > 0.0);
        }
        let text = registry.encode();
        assert!(mm_metrics::validate_text(&text).is_ok());
        assert!(text.contains("soak_sessions_started_total"));
        assert!(text.contains("soak_plt_seconds_bucket"));
        assert!(text.contains("tcp_retransmits_total"));
        // Event-loop profile: per-component dispatch counters plus the
        // timer-heap high-water gauge.
        // (TCP timers route through the mux here — enable_timer_mux —
        // so the mux dispatcher tag is the one that fires.)
        assert!(text.contains("sim_events_timer_mux_total"));
        assert!(text.contains("sim_events_host_total"));
        assert!(text.contains("sim_events_delay_total"));
        assert!(text.contains("sim_heap_high_water_events"));
        assert!(text.contains("soak_origin_requests"));
        // Span layer → PhaseSink: per-phase duration histograms land in
        // the same registry, so the snapshot attributes where session
        // time goes (transfer vs queueing vs parse).
        assert!(text.contains("soak_phase_transfer_seconds_bucket"));
        assert!(text.contains("soak_phase_conn_setup_seconds_bucket"));
        assert!(text.contains("soak_phase_parse_seconds_bucket"));
    }

    #[test]
    fn origin_of_strips_scheme_and_path() {
        assert_eq!(origin_of("http://10.0.0.3:8080/x/y"), "10.0.0.3:8080");
        assert_eq!(origin_of("http://10.0.0.1/"), "10.0.0.1");
        assert_eq!(origin_of("10.0.0.1/x"), "10.0.0.1");
    }

    #[test]
    fn soak_is_deterministic() {
        let site = small_site();
        let a = run_soak(&short_spec(&site), &Registry::new());
        let b = run_soak(&short_spec(&site), &Registry::new());
        assert_eq!(a.sessions_started, b.sessions_started);
        assert_eq!(a.resources_fetched, b.resources_fetched);
        assert_eq!(a.plt_p50_ms, b.plt_p50_ms);
        assert_eq!(a.server_conn_high_water, b.server_conn_high_water);
    }

    #[test]
    fn overloaded_pool_sheds_arrivals() {
        let site = small_site();
        let mut spec = short_spec(&site);
        spec.duration = SimDuration::from_secs(5);
        spec.arrival_mean = SimDuration::from_millis(20);
        spec.max_live_sessions = 1;
        let r = run_soak(&spec, &Registry::new());
        assert!(r.sessions_shed > 0, "no shedding under 50/s on one slot");
        // Shed arrivals never entered the world.
        assert_eq!(r.sessions_started, r.sessions_completed);
    }
}
