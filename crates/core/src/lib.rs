//! # mahimahi — a lightweight toolkit for reproducible web measurement, in Rust
//!
//! A full reimplementation of the Mahimahi toolkit (Netravali et al.,
//! SIGCOMM 2014) on a deterministic network simulator: record websites
//! ([`mm_record::RecordShell`]), replay them preserving their multi-origin
//! structure ([`mm_replay::ReplayShell`]), and measure applications under
//! emulated network conditions (DelayShell, LinkShell, LossShell —
//! [`mm_shells`]), all inside isolated virtual network namespaces.
//!
//! The [`harness`] module is the front door for measurements:
//!
//! ```
//! use mahimahi::harness::{run_page_load, LoadSpec, NetSpec};
//! use mahimahi::corpus;
//! use mm_sim::RngStream;
//!
//! // Build a small synthetic recorded site and load it through a 30 ms
//! // delay shell.
//! let plan = corpus::plan_site(990, &corpus::SiteParams {
//!     servers: Some(4),
//!     median_objects: 10.0,
//!     ..Default::default()
//! }, &mut RngStream::from_seed(1));
//! let site = corpus::materialize(&plan);
//! let mut spec = LoadSpec::new(&site);
//! spec.net = NetSpec::delay_ms(30);
//! let result = run_page_load(&spec);
//! assert!(result.plt.as_millis() > 60); // at least one round trip
//! ```

pub mod fleet;
pub mod harness;
pub mod obs;
pub mod soak;

/// Re-exports of every subsystem, one module per shell/substrate.
pub use mm_browser as browser;
pub use mm_corpus as corpus;
pub use mm_http as http;
pub use mm_metrics as metrics;
pub use mm_net as net;
pub use mm_record as record;
pub use mm_replay as replay;
pub use mm_shells as shells;
pub use mm_sim as sim;
pub use mm_trace as trace;
pub use mm_web as web;

pub use fleet::{run_fleet, CcMix, FleetResult, FleetSpec, UserOutcome};
pub use harness::{run_loads, run_page_load, LinkSpec, LoadSpec, NetSpec, QdiscKind};
pub use soak::{run_soak, SoakResult, SoakSpec};
