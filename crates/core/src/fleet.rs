//! Population-scale contention worlds: one shared bottleneck, many users.
//!
//! Where [`crate::harness::run_page_load`] builds a pristine world per
//! measurement, [`run_fleet`] builds ONE world and puts `n_users`
//! concurrent users inside it — each with a browser doing a page load and
//! a long-running bulk download — all contending for the same emulated
//! link. This is the `figshare` substrate: fairness (Jain's index over
//! per-user bulk goodputs), per-user PLT percentiles under cross traffic,
//! and bottleneck queue occupancy, swept over qdisc × CC mix × protocol.
//!
//! Topology (mahimahi nesting order preserved):
//!
//! ```text
//! root ns: replay servers (shared) + one bulk server per user
//!   └─ delay / link / loss shells          (the shared bottleneck)
//!        └─ inner ns: n_users browser hosts
//! ```
//!
//! Per-user congestion control lives on the user's dedicated bulk server
//! (the data sender), so a 50/50 BBR+Reno population genuinely races
//! BBRv1 against NewReno through one queue. Every host in a fleet world
//! runs its socket timers through a shared per-host
//! [`mm_net::Host::enable_timer_mux`] mux rather than the simulator's
//! global heap.

use std::cell::RefCell;
use std::rc::Rc;

use bytes::Bytes;
use mm_browser::{Browser, PageLoadResult, ProtocolMode, Resolver};
use mm_net::{CcAlgorithm, Host, IpAddr, Listener, SocketAddr, SocketApp, SocketEvent, TcpHandle};
use mm_replay::{ReplayShell, ServerProtocol};
use mm_shells::{ShellLayer, ShellStack};
use mm_sim::{jain_fairness, RngStream, SimDuration, Simulator, Summary, Timestamp};

use crate::harness::LoadSpec;

/// A fleet world: one shared [`LoadSpec`]-shaped environment plus the
/// population knobs. The embedded `load` describes the site, network,
/// browser and base TCP configuration every user shares; `load.seed`
/// seeds the whole world.
pub struct FleetSpec<'a> {
    /// The environment (site, replay, browser, net, base TCP, seed).
    pub load: LoadSpec<'a>,
    /// How many concurrent users share the bottleneck.
    pub n_users: usize,
    /// Congestion-control population mix.
    pub cc_mix: CcMix,
    /// Bytes each user's companion bulk download transfers (0 = none).
    pub bulk_bytes: u64,
    /// User `i` arrives at `arrival_window * i / n_users` — deterministic
    /// stagger, so user indices pair across sweep cells.
    pub arrival_window: SimDuration,
}

/// Congestion-control population mix across a fleet's users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMix {
    /// Every user's sender runs NewReno.
    AllReno,
    /// Every user's sender runs BBRv1.
    AllBbr,
    /// Even-indexed users run BBRv1, odd-indexed NewReno (50/50).
    BbrRenoSplit,
}

impl CcMix {
    /// The algorithm user `i` drives its bulk sender with.
    pub fn cc_for(&self, user: usize) -> CcAlgorithm {
        match self {
            CcMix::AllReno => CcAlgorithm::Reno,
            CcMix::AllBbr => CcAlgorithm::Bbr,
            CcMix::BbrRenoSplit => {
                if user.is_multiple_of(2) {
                    CcAlgorithm::Bbr
                } else {
                    CcAlgorithm::Reno
                }
            }
        }
    }

    /// When the whole population runs one algorithm, that algorithm —
    /// it then also applies to the shared replay servers. A split mix
    /// cannot (shared servers have one config), so web flows keep the
    /// base config; see DESIGN.md §7.
    pub fn uniform(&self) -> Option<CcAlgorithm> {
        match self {
            CcMix::AllReno => Some(CcAlgorithm::Reno),
            CcMix::AllBbr => Some(CcAlgorithm::Bbr),
            CcMix::BbrRenoSplit => None,
        }
    }

    /// Stable key fragment for reports.
    pub fn label(&self) -> &'static str {
        match self {
            CcMix::AllReno => "all_reno",
            CcMix::AllBbr => "all_bbr",
            CcMix::BbrRenoSplit => "bbr_reno",
        }
    }
}

/// What one user experienced inside the shared world.
#[derive(Debug, Clone)]
pub struct UserOutcome {
    /// User index (0-based).
    pub user: usize,
    /// The congestion control its bulk sender ran.
    pub cc: CcAlgorithm,
    /// Page load time of the user's single page load, in milliseconds.
    pub plt_ms: f64,
    /// Goodput of the user's bulk download in bits/second.
    pub goodput_bps: f64,
    /// Bytes the bulk download actually delivered.
    pub bulk_bytes: u64,
}

/// Everything measured from one fleet world.
#[derive(Debug, Clone)]
pub struct FleetResult {
    pub users: Vec<UserOutcome>,
    /// High-water backlog of the bottleneck downlink queue, in packets.
    pub max_downlink_queue_packets: usize,
    /// High-water backlog of the bottleneck uplink queue, in packets.
    pub max_uplink_queue_packets: usize,
    /// High-water backlog of the bottleneck downlink queue, in wire
    /// bytes (same peaks, byte-denominated — see
    /// `QdiscStats::max_backlog_bytes`).
    pub max_downlink_queue_bytes: usize,
    /// High-water backlog of the bottleneck uplink queue, in wire bytes.
    pub max_uplink_queue_bytes: usize,
    /// Virtual time at which the last event ran.
    pub completed_at: SimDuration,
}

impl FleetResult {
    /// Per-user bulk goodputs, user order.
    pub fn goodputs(&self) -> Vec<f64> {
        self.users.iter().map(|u| u.goodput_bps).collect()
    }

    /// Jain's fairness index over per-user bulk goodputs.
    pub fn fairness(&self) -> f64 {
        jain_fairness(&self.goodputs())
    }

    /// Interpolated PLT percentile across users, in milliseconds.
    pub fn plt_percentile(&self, p: f64) -> f64 {
        let mut s = Summary::from_samples(self.users.iter().map(|u| u.plt_ms).collect::<Vec<_>>());
        s.percentile_interpolated(p)
    }

    /// Fraction of aggregate bulk goodput taken by BBR users (0.0 for an
    /// all-Reno world, 1.0 for all-BBR; the dominance measurement for the
    /// 50/50 mix).
    pub fn bbr_goodput_share(&self) -> f64 {
        let total: f64 = self.goodputs().iter().sum();
        // fold from +0.0: an empty `Iterator::sum` yields -0.0, which
        // would leak a negative zero into reports for all-Reno worlds.
        let bbr: f64 = self
            .users
            .iter()
            .filter(|u| u.cc == CcAlgorithm::Bbr)
            .map(|u| u.goodput_bps)
            .fold(0.0, |a, b| a + b);
        if total > 0.0 {
            bbr / total
        } else {
            0.0
        }
    }
}

/// Browser host address for user `i` (100.64/16, clear of the corpus's
/// 23/8 server pool and the harness's single-load browser IP).
fn user_ip(i: usize) -> IpAddr {
    assert!(i < 200 * 200, "fleet larger than the address plan");
    IpAddr::new(100, 64, 1 + (i / 200) as u8, (2 + i % 200) as u8)
}

/// Dedicated bulk-server address for user `i` (10.99/16).
fn bulk_ip(i: usize) -> IpAddr {
    IpAddr::new(10, 99, 1 + (i / 200) as u8, (1 + i % 200) as u8)
}

const BULK_PORT: u16 = 5001;

/// Server side of a bulk transfer: on connect, push `bytes` and close.
struct BulkListener {
    bytes: u64,
}

impl Listener for BulkListener {
    fn on_connection(&self, _sim: &mut Simulator, _h: TcpHandle) -> Rc<dyn SocketApp> {
        struct Sender {
            bytes: u64,
        }
        impl SocketApp for Sender {
            fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
                if let SocketEvent::Connected = ev {
                    h.send(sim, Bytes::from(vec![0u8; self.bytes as usize]));
                    h.close(sim);
                }
            }
        }
        Rc::new(Sender { bytes: self.bytes })
    }
}

/// Client side: counts delivered bytes, stamps completion.
struct BulkClient {
    started: Timestamp,
    expected: u64,
    received: RefCell<u64>,
    /// `(last data timestamp, bytes so far)` — completion uses the final
    /// entry even if the transfer dies short of `expected`.
    progress: Rc<RefCell<Option<(Timestamp, u64)>>>,
}

impl SocketApp for BulkClient {
    fn on_event(&self, sim: &mut Simulator, h: &TcpHandle, ev: SocketEvent) {
        match ev {
            SocketEvent::Data(b) => {
                let mut recv = self.received.borrow_mut();
                *recv += b.len() as u64;
                *self.progress.borrow_mut() = Some((sim.now(), *recv));
                if *recv >= self.expected {
                    h.close(sim);
                }
            }
            SocketEvent::PeerClosed => h.close(sim),
            _ => {}
        }
    }
}

impl BulkClient {
    fn goodput_bps(&self) -> (f64, u64) {
        match *self.progress.borrow() {
            Some((at, bytes)) if at > self.started => {
                let secs = (at - self.started).as_secs_f64();
                ((bytes as f64) * 8.0 / secs, bytes)
            }
            _ => (0.0, 0),
        }
    }
}

/// Run one fleet world to completion.
///
/// Panics if any user's page load never finishes — a world where loads
/// hang is a harness bug, not a measurable outcome.
pub fn run_fleet(spec: &FleetSpec<'_>) -> FleetResult {
    assert!(spec.n_users >= 1, "a fleet needs at least one user");
    let mut sim = Simulator::new();
    let rng = RngStream::from_seed(spec.load.seed);
    let ids = mm_net::PacketIdGen::new();

    let base_tcp = spec.load.tcp.clone().unwrap_or_default();

    // Shared replay servers, outermost — same protocol passthrough as the
    // single-load harness.
    let mut replay_config = spec.load.replay.clone();
    if let ProtocolMode::Mux(mux) = &spec.load.browser.protocol {
        replay_config.protocol = ServerProtocol::Mux(mux.clone());
    }
    if replay_config.tcp.is_none() {
        replay_config.tcp = match spec.cc_mix.uniform() {
            Some(cc) => Some(base_tcp.to_builder().cc(cc).build()),
            None => Some(base_tcp.clone()),
        };
    }
    let shell = {
        let root_ns = mm_net::Namespace::root("replayshell");
        Rc::new(ReplayShell::new(
            &root_ns,
            spec.load.site,
            replay_config,
            &ids,
        ))
    };
    let root_ns = shell.ns.clone();
    shell.enable_timer_mux();
    let explicit_iw = spec.load.tcp.as_ref().and_then(|t| t.initial_cwnd_segments);
    if let ProtocolMode::Mux(mux) = &spec.load.browser.protocol {
        if explicit_iw.is_none() {
            if let Some(iw) = mux.server_initial_cwnd_segments {
                for host in &shell.hosts {
                    host.set_tcp_config(
                        host.tcp_config()
                            .to_builder()
                            .initial_cwnd_segments(iw)
                            .build(),
                    );
                }
            }
        }
    }

    // One bulk server per user, also outermost: the user's long-running
    // sender, carrying that user's congestion control.
    let mut bulk_servers = Vec::with_capacity(spec.n_users);
    if spec.bulk_bytes > 0 {
        for i in 0..spec.n_users {
            let host = Host::new_in(bulk_ip(i), ids.clone(), &root_ns);
            host.enable_timer_mux();
            host.set_tcp_config(base_tcp.to_builder().cc(spec.cc_mix.cc_for(i)).build());
            host.listen(
                BULK_PORT,
                Rc::new(BulkListener {
                    bytes: spec.bulk_bytes,
                }),
            );
            bulk_servers.push(host);
        }
    }

    // The shared bottleneck: delay / link / loss in mahimahi order.
    let mut stack = ShellStack::new(&root_ns);
    if let Some(overhead) = spec.load.net.shell_overhead {
        stack = stack.with_shell_overhead(overhead);
    }
    if let Some(delay) = spec.load.net.delay {
        stack = stack.delay(delay);
    }
    if let Some(link) = &spec.load.net.link {
        let qdisc = link.qdisc;
        stack = stack.link_asymmetric(link.uplink.clone(), link.downlink.clone(), &move || {
            qdisc.build()
        });
    }
    if let Some((up, down)) = spec.load.net.loss {
        stack = stack.loss(up, down, &rng.fork("loss"));
    }
    let inner_ns = stack.innermost();

    let resolver: Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &mm_http::Url| {
            let ip: IpAddr = url
                .host
                .parse()
                .expect("replay corpora address hosts by IP literal");
            shell.resolve(SocketAddr::new(ip, url.port))
        })
    };

    // Users: staggered deterministic arrivals across the window, so the
    // same user index arrives at the same time in every cell of a sweep
    // (per-user pairing).
    let plt_slots: Vec<Rc<RefCell<Option<PageLoadResult>>>> = (0..spec.n_users)
        .map(|_| Rc::new(RefCell::new(None)))
        .collect();
    let mut bulk_clients: Vec<Rc<BulkClient>> = Vec::with_capacity(spec.n_users);
    for (i, plt_slot) in plt_slots.iter().enumerate() {
        let start = Timestamp::ZERO
            + SimDuration::from_nanos(
                spec.arrival_window.as_nanos() * i as u64 / spec.n_users as u64,
            );
        let host = Host::new_in(user_ip(i), ids.clone(), &inner_ns);
        host.enable_timer_mux();
        let mut browser_config = spec.load.browser.clone();
        browser_config.tcp = Some(base_tcp.to_builder().cc(spec.cc_mix.cc_for(i)).build());
        let browser = Browser::new(host.clone(), resolver.clone(), browser_config);
        let slot = plt_slot.clone();
        let root_url = spec.load.site.root_url.clone();
        sim.schedule_at(start, move |sim| {
            browser.navigate(sim, &root_url, move |_sim, r| {
                *slot.borrow_mut() = Some(r);
            });
        });

        if spec.bulk_bytes > 0 {
            let client = Rc::new(BulkClient {
                started: start,
                expected: spec.bulk_bytes,
                received: RefCell::new(0),
                progress: Rc::new(RefCell::new(None)),
            });
            bulk_clients.push(client.clone());
            let bulk_addr = SocketAddr::new(bulk_ip(i), BULK_PORT);
            sim.schedule_at(start, move |sim| {
                host.connect(sim, bulk_addr, client);
            });
        }
    }

    sim.run();

    let users = (0..spec.n_users)
        .map(|i| {
            let plt = plt_slots[i]
                .borrow_mut()
                .take()
                .unwrap_or_else(|| panic!("user {i}: page load did not complete"));
            let (goodput_bps, bulk_bytes) = match bulk_clients.get(i) {
                Some(c) => c.goodput_bps(),
                None => (0.0, 0),
            };
            UserOutcome {
                user: i,
                cc: spec.cc_mix.cc_for(i),
                plt_ms: plt.plt.as_millis_f64(),
                goodput_bps,
                bulk_bytes,
            }
        })
        .collect();

    let (mut max_up, mut max_down) = (0, 0);
    let (mut max_up_bytes, mut max_down_bytes) = (0, 0);
    for layer in stack.layers() {
        if let ShellLayer::Link(link) = layer {
            let up = link.uplink.qdisc_stats();
            let down = link.downlink.qdisc_stats();
            max_up = max_up.max(up.max_backlog_packets);
            max_down = max_down.max(down.max_backlog_packets);
            max_up_bytes = max_up_bytes.max(up.max_backlog_bytes);
            max_down_bytes = max_down_bytes.max(down.max_backlog_bytes);
        }
    }

    FleetResult {
        users,
        max_downlink_queue_packets: max_down,
        max_uplink_queue_packets: max_up,
        max_downlink_queue_bytes: max_down_bytes,
        max_uplink_queue_bytes: max_up_bytes,
        completed_at: sim.now() - Timestamp::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{LinkSpec, NetSpec};
    use mm_corpus::{materialize, plan_site, SiteParams};
    use mm_trace::constant_rate;

    fn small_site() -> mm_record::StoredSite {
        let params = SiteParams {
            servers: Some(4),
            median_objects: 10.0,
            ..SiteParams::default()
        };
        let plan = plan_site(960, &params, &mut RngStream::from_seed(17));
        materialize(&plan)
    }

    fn base_spec(site: &mm_record::StoredSite, n: usize) -> FleetSpec<'_> {
        let mut load = LoadSpec::new(site);
        load.net = NetSpec {
            delay: Some(SimDuration::from_millis(20)),
            link: Some(LinkSpec::symmetric(constant_rate(20.0, 2000))),
            ..NetSpec::default()
        };
        load.seed = 2014;
        FleetSpec {
            load,
            n_users: n,
            cc_mix: CcMix::AllReno,
            bulk_bytes: 200_000,
            arrival_window: SimDuration::from_millis(500),
        }
    }

    #[test]
    fn two_user_fleet_completes_with_positive_goodputs() {
        let site = small_site();
        let r = run_fleet(&base_spec(&site, 2));
        assert_eq!(r.users.len(), 2);
        for u in &r.users {
            assert!(u.plt_ms > 0.0, "user {} plt {}", u.user, u.plt_ms);
            assert!(u.goodput_bps > 0.0, "user {} goodput", u.user);
            assert_eq!(u.bulk_bytes, 200_000);
        }
        let j = r.fairness();
        assert!(j > 0.0 && j <= 1.0, "fairness {j}");
        assert!(r.max_downlink_queue_packets > 0);
    }

    #[test]
    fn fleet_determinism_same_seed_same_outcomes() {
        let site = small_site();
        let a = run_fleet(&base_spec(&site, 3));
        let b = run_fleet(&base_spec(&site, 3));
        for (x, y) in a.users.iter().zip(&b.users) {
            assert_eq!(x.plt_ms, y.plt_ms);
            assert_eq!(x.goodput_bps, y.goodput_bps);
        }
        assert_eq!(a.max_downlink_queue_packets, b.max_downlink_queue_packets);
    }

    #[test]
    fn contention_slows_loads_down() {
        let site = small_site();
        let solo = run_fleet(&base_spec(&site, 1));
        let crowd = run_fleet(&base_spec(&site, 8));
        // Under 8-way contention on the same link, the median PLT must
        // exceed the uncontended load's.
        assert!(
            crowd.plt_percentile(50.0) > solo.plt_percentile(50.0),
            "crowd {} vs solo {}",
            crowd.plt_percentile(50.0),
            solo.plt_percentile(50.0)
        );
    }

    #[test]
    fn split_mix_assigns_both_algorithms() {
        let site = small_site();
        let mut spec = base_spec(&site, 4);
        spec.cc_mix = CcMix::BbrRenoSplit;
        let r = run_fleet(&spec);
        let bbr = r.users.iter().filter(|u| u.cc == CcAlgorithm::Bbr).count();
        assert_eq!(bbr, 2);
        let share = r.bbr_goodput_share();
        assert!(share > 0.0 && share < 1.0, "share {share}");
    }
}
