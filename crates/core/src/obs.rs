//! Observability glue for the harness layers: registry export helpers
//! for page-load and fleet results, and the process-global flow-trace
//! collector behind the experiment binaries' `--trace-out` flag.
//!
//! The collector is process-global because experiment bodies shard
//! site loops across threads (`bench::parallel_map`) and each load
//! builds its own world: every load gets a private [`FlowTracer`]
//! (single-threaded, like the world), and drains its JSONL into the
//! shared buffer when the load completes. Enabling the trace installs
//! a metrics sink into otherwise-unconfigured loads; sinks only
//! observe, so simulation results — and therefore BENCH outputs — are
//! unchanged.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fleet::FleetResult;
use mm_metrics::{FlowTracer, Registry, LATENCY_BUCKETS_S};
use mm_sim::SimDuration;

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static TRACE_BUFFER: Mutex<String> = Mutex::new(String::new());

static CAPTURE_ENABLED: AtomicBool = AtomicBool::new(false);
static CAPTURE_BUFFER: Mutex<String> = Mutex::new(String::new());
static CAPTURE_BUDGET: AtomicU64 = AtomicU64::new(0);
static CAPTURE_NEXT_LOAD: AtomicU64 = AtomicU64::new(0);

/// Default number of page loads a `--capture-out` run captures. Packet
/// captures are far denser than flow traces (every enqueue/dequeue/
/// deliver at every shell), so the budget keeps a many-hundred-load
/// sweep from writing gigabytes while still giving `mmgraph` several
/// complete loads to draw.
pub const DEFAULT_CAPTURE_LOADS: u64 = 8;

/// Turn on process-global flow tracing: subsequent
/// [`run_page_load`](crate::harness::run_page_load) calls whose spec
/// carries no explicit metrics sink get a private tracer whose samples
/// accumulate for [`take_trace_jsonl`].
pub fn enable_trace() {
    TRACE_ENABLED.store(true, Ordering::SeqCst);
}

/// Whether [`enable_trace`] has been called.
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::SeqCst)
}

/// Append one world's drained trace to the global buffer.
pub fn append_trace_jsonl(jsonl: &str) {
    if !jsonl.is_empty() {
        TRACE_BUFFER
            .lock()
            .expect("trace buffer poisoned")
            .push_str(jsonl);
    }
}

/// Drain a per-world tracer into the global buffer.
pub fn merge_tracer(tracer: &FlowTracer) {
    append_trace_jsonl(&tracer.take_jsonl());
}

/// Take everything traced so far (the `--trace-out` writer).
pub fn take_trace_jsonl() -> String {
    std::mem::take(&mut *TRACE_BUFFER.lock().expect("trace buffer poisoned"))
}

/// Turn on process-global packet capture for the first `max_loads`
/// page loads: each captured load gets a private [`mm_capture::Capture`]
/// tapped into its shells, browser and replay servers, whose JSONL is
/// merged into the buffer behind [`take_capture_jsonl`] when the load
/// completes. Taps only observe, so simulation results — and therefore
/// BENCH outputs — are byte-identical with capture on or off.
pub fn enable_capture(max_loads: u64) {
    CAPTURE_BUDGET.store(max_loads, Ordering::SeqCst);
    CAPTURE_ENABLED.store(true, Ordering::SeqCst);
}

/// Whether [`enable_capture`] has been called.
pub fn capture_enabled() -> bool {
    CAPTURE_ENABLED.load(Ordering::SeqCst)
}

/// Claim a capture slot for one page load, returning its process-unique
/// load id, or `None` when capture is off or the budget is spent.
pub fn claim_capture_load() -> Option<u64> {
    if !capture_enabled() {
        return None;
    }
    let mut budget = CAPTURE_BUDGET.load(Ordering::SeqCst);
    loop {
        if budget == 0 {
            return None;
        }
        match CAPTURE_BUDGET.compare_exchange(
            budget,
            budget - 1,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => return Some(CAPTURE_NEXT_LOAD.fetch_add(1, Ordering::SeqCst)),
            Err(seen) => budget = seen,
        }
    }
}

/// Append one load's capture JSONL to the global buffer.
pub fn append_capture_jsonl(jsonl: &str) {
    if !jsonl.is_empty() {
        CAPTURE_BUFFER
            .lock()
            .expect("capture buffer poisoned")
            .push_str(jsonl);
    }
}

/// Drain a per-load capture into the global buffer.
pub fn merge_capture(capture: &mm_capture::Capture) {
    append_capture_jsonl(&capture.take_jsonl());
}

/// Take everything captured so far (the `--capture-out` writer).
pub fn take_capture_jsonl() -> String {
    std::mem::take(&mut *CAPTURE_BUFFER.lock().expect("capture buffer poisoned"))
}

/// Record one page-load time into the `plt_seconds` histogram.
pub fn record_plt(registry: &Registry, plt: SimDuration) {
    registry
        .histogram(
            "plt_seconds",
            "Page load time distribution.",
            &LATENCY_BUCKETS_S,
        )
        .observe(plt.as_secs_f64());
}

/// Export a fleet world's outcome: the population PLT histogram,
/// per-user goodput gauges, and the bottleneck-queue high-water marks
/// in both denominations.
pub fn export_fleet_metrics(result: &FleetResult, registry: &Registry) {
    let plt = registry.histogram(
        "fleet_plt_seconds",
        "Per-user page load times in the shared world.",
        &LATENCY_BUCKETS_S,
    );
    for user in &result.users {
        plt.observe(user.plt_ms / 1e3);
        registry
            .gauge_with(
                "fleet_user_goodput_bps",
                "Bulk goodput of one user's download.",
                &[("user", &user.user.to_string())],
            )
            .set(user.goodput_bps);
    }
    registry
        .gauge(
            "fleet_queue_max_downlink_packets",
            "High-water backlog of the bottleneck downlink queue.",
        )
        .set(result.max_downlink_queue_packets as f64);
    registry
        .gauge(
            "fleet_queue_max_uplink_packets",
            "High-water backlog of the bottleneck uplink queue.",
        )
        .set(result.max_uplink_queue_packets as f64);
    registry
        .gauge(
            "fleet_queue_max_downlink_bytes",
            "Byte-denominated downlink backlog high-water mark.",
        )
        .set(result.max_downlink_queue_bytes as f64);
    registry
        .gauge(
            "fleet_queue_max_uplink_bytes",
            "Byte-denominated uplink backlog high-water mark.",
        )
        .set(result.max_uplink_queue_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buffer_accumulates_and_drains() {
        // Note: shares process-global state with other tests, so only
        // assert on our own marker line surviving the round trip.
        append_trace_jsonl("{\"flow\":999999}\n");
        let drained = take_trace_jsonl();
        assert!(drained.contains("{\"flow\":999999}"));
        assert!(!take_trace_jsonl().contains("999999"));
    }

    #[test]
    fn capture_claim_requires_enable_and_buffer_roundtrips() {
        // The capture flag is process-global, so unit tests leave it
        // off (enabling here would leak capture work into every other
        // concurrently-running harness test).
        assert!(claim_capture_load().is_none());
        append_capture_jsonl("{\"ev\":\"pkt\",\"load\":123456}\n");
        let drained = take_capture_jsonl();
        assert!(drained.contains("123456"));
        assert!(!take_capture_jsonl().contains("123456"));
    }

    #[test]
    fn record_plt_fills_buckets() {
        let registry = Registry::new();
        record_plt(&registry, SimDuration::from_millis(300));
        record_plt(&registry, SimDuration::from_millis(1500));
        let text = registry.encode();
        assert!(text.contains("plt_seconds_count 2"));
        assert!(text.contains("plt_seconds_bucket{le=\"0.5\"} 1"));
    }
}
