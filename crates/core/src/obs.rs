//! Observability glue for the harness layers: registry export helpers
//! for page-load and fleet results, and the process-global collectors
//! behind the experiment binaries' `--trace-out`, `--capture-out` and
//! `--span-out` flags.
//!
//! The collectors are process-global because experiment bodies shard
//! site loops across threads (`bench::parallel_map`) and each load
//! builds its own world: every instrumented load gets a private
//! single-threaded recorder ([`FlowTracer`], [`mm_capture::Capture`],
//! [`mm_trace::TraceBuffer`]) and drains its JSONL into the shared
//! buffer when the load completes. All three channels share one
//! [`ObsChannel`] shape — an enable flag, a CAS-claimed load budget
//! handing out process-unique load ids, and the merge buffer — so
//! adding a consumer is a static and three thin wrappers. Recorders
//! only observe; simulation results (and therefore BENCH outputs) are
//! byte-identical with them on or off.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::fleet::FleetResult;
use mm_metrics::{FlowTracer, Registry, LATENCY_BUCKETS_S};
use mm_sim::SimDuration;
use mm_trace::{Span, SpanKind, SpanSink};

/// One process-global observability channel: an on/off flag, a budget
/// of page loads still to record (claimed by CAS so threaded site
/// loops never over-record), a process-unique load-id allocator, and
/// the buffer completed loads merge their JSONL into.
struct ObsChannel {
    enabled: AtomicBool,
    budget: AtomicU64,
    next_load: AtomicU64,
    buffer: Mutex<String>,
}

impl ObsChannel {
    const fn new() -> ObsChannel {
        ObsChannel {
            enabled: AtomicBool::new(false),
            budget: AtomicU64::new(0),
            next_load: AtomicU64::new(0),
            buffer: Mutex::new(String::new()),
        }
    }

    fn enable(&self, max_loads: u64) {
        self.budget.store(max_loads, Ordering::SeqCst);
        self.enabled.store(true, Ordering::SeqCst);
    }

    fn enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Claim a recording slot for one page load, returning its
    /// process-unique load id, or `None` when the channel is off or
    /// the budget is spent.
    fn claim_load(&self) -> Option<u64> {
        if !self.enabled() {
            return None;
        }
        let mut budget = self.budget.load(Ordering::SeqCst);
        loop {
            if budget == 0 {
                return None;
            }
            match self.budget.compare_exchange(
                budget,
                budget - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(self.next_load.fetch_add(1, Ordering::SeqCst)),
                Err(seen) => budget = seen,
            }
        }
    }

    fn append(&self, jsonl: &str) {
        if !jsonl.is_empty() {
            self.buffer
                .lock()
                .expect("obs buffer poisoned")
                .push_str(jsonl);
        }
    }

    fn take(&self) -> String {
        std::mem::take(&mut *self.buffer.lock().expect("obs buffer poisoned"))
    }
}

static TRACE: ObsChannel = ObsChannel::new();
static CAPTURE: ObsChannel = ObsChannel::new();
static SPAN: ObsChannel = ObsChannel::new();
static AUDIT: ObsChannel = ObsChannel::new();

/// Default number of page loads a `--capture-out` run captures. Packet
/// captures are far denser than flow traces (every enqueue/dequeue/
/// deliver at every shell), so the budget keeps a many-hundred-load
/// sweep from writing gigabytes while still giving `mmgraph` several
/// complete loads to draw.
pub const DEFAULT_CAPTURE_LOADS: u64 = 8;

/// Default number of page loads a `--span-out` run records. Spans are
/// per-resource rather than per-packet (a few hundred per load), so
/// the budget can afford more loads than packet capture — enough for
/// `mmpath --diff` to pair both arms of a protocol comparison across
/// several sites.
pub const DEFAULT_SPAN_LOADS: u64 = 64;

/// Turn on process-global flow tracing: subsequent
/// [`run_page_load`](crate::harness::run_page_load) calls whose spec
/// carries no explicit metrics sink get a private tracer whose samples
/// accumulate for [`take_trace_jsonl`]. Flow traces are cheap (a few
/// samples per ack), so the budget is effectively unbounded — the
/// claim exists so all channels share one idiom.
pub fn enable_trace() {
    TRACE.enable(u64::MAX);
}

/// Whether [`enable_trace`] has been called.
pub fn trace_enabled() -> bool {
    TRACE.enabled()
}

/// Claim a flow-trace slot for one page load (see [`ObsChannel::claim_load`]).
pub fn claim_trace_load() -> Option<u64> {
    TRACE.claim_load()
}

/// Append one world's drained trace to the global buffer.
pub fn append_trace_jsonl(jsonl: &str) {
    TRACE.append(jsonl);
}

/// Drain a per-world tracer into the global buffer.
pub fn merge_tracer(tracer: &FlowTracer) {
    TRACE.append(&tracer.take_jsonl());
}

/// Take everything traced so far (the `--trace-out` writer).
pub fn take_trace_jsonl() -> String {
    TRACE.take()
}

/// Turn on process-global packet capture for the first `max_loads`
/// page loads: each captured load gets a private [`mm_capture::Capture`]
/// tapped into its shells, browser and replay servers, whose JSONL is
/// merged into the buffer behind [`take_capture_jsonl`] when the load
/// completes. Taps only observe, so simulation results — and therefore
/// BENCH outputs — are byte-identical with capture on or off.
pub fn enable_capture(max_loads: u64) {
    CAPTURE.enable(max_loads);
}

/// Whether [`enable_capture`] has been called.
pub fn capture_enabled() -> bool {
    CAPTURE.enabled()
}

/// Claim a capture slot for one page load, returning its process-unique
/// load id, or `None` when capture is off or the budget is spent.
pub fn claim_capture_load() -> Option<u64> {
    CAPTURE.claim_load()
}

/// Append one load's capture JSONL to the global buffer.
pub fn append_capture_jsonl(jsonl: &str) {
    CAPTURE.append(jsonl);
}

/// Drain a per-load capture into the global buffer.
pub fn merge_capture(capture: &mm_capture::Capture) {
    CAPTURE.append(&capture.take_jsonl());
}

/// Take everything captured so far (the `--capture-out` writer).
pub fn take_capture_jsonl() -> String {
    CAPTURE.take()
}

/// Turn on process-global span recording for the first `max_loads`
/// page loads: each recorded load gets a private
/// [`mm_trace::TraceBuffer`] wired through the browser, sockets, mux
/// client and replay servers, whose JSONL is merged into the buffer
/// behind [`take_span_jsonl`] when the load completes. Sinks only
/// observe, so BENCH outputs are byte-identical with spans on or off.
pub fn enable_spans(max_loads: u64) {
    SPAN.enable(max_loads);
}

/// Whether [`enable_spans`] has been called.
pub fn spans_enabled() -> bool {
    SPAN.enabled()
}

/// Claim a span slot for one page load, returning its process-unique
/// load id, or `None` when recording is off or the budget is spent.
pub fn claim_span_load() -> Option<u64> {
    SPAN.claim_load()
}

/// Append one load's span JSONL to the global buffer.
pub fn append_span_jsonl(jsonl: &str) {
    SPAN.append(jsonl);
}

/// Drain a per-load span buffer into the global buffer.
pub fn merge_spans(buffer: &mm_trace::TraceBuffer) {
    SPAN.append(&buffer.to_jsonl());
}

/// Take everything recorded so far (the `--span-out` writer).
pub fn take_span_jsonl() -> String {
    SPAN.take()
}

/// Turn on process-global conformance auditing: every subsequent
/// [`run_page_load`](crate::harness::run_page_load) wires an
/// [`mm_audit::Auditor`] into the load's metrics, tap and span hooks
/// and merges its report into the buffer behind [`take_audit_jsonl`].
/// Auditors validate instead of record, so their state is a bounded
/// set of ledgers rather than a per-packet log — the budget is
/// unbounded, matching `--trace-out`.
pub fn enable_audit() {
    AUDIT.enable(u64::MAX);
}

/// Whether [`enable_audit`] has been called.
pub fn audit_enabled() -> bool {
    AUDIT.enabled()
}

/// Claim an audit slot for one page load (see [`ObsChannel::claim_load`]).
pub fn claim_audit_load() -> Option<u64> {
    AUDIT.claim_load()
}

/// Append one load's audit report JSONL to the global buffer.
pub fn append_audit_jsonl(jsonl: &str) {
    AUDIT.append(jsonl);
}

/// Take every audit report merged so far (the `--audit-out` writer).
pub fn take_audit_jsonl() -> String {
    AUDIT.take()
}

/// A [`SpanSink`] that turns per-resource phase spans into labeled
/// duration histograms in a [`Registry`] — the soak harness's view of
/// the span layer: no buffering, no ids, just which phase's tail grows
/// as the offered load approaches the knee. Histogram names follow
/// `<prefix>_phase_<kind>_seconds` so the `_seconds` suffix picks up
/// the latency bucket ladder downstream.
pub struct PhaseSink {
    registry: Registry,
    prefix: &'static str,
}

impl PhaseSink {
    pub fn new(registry: Registry, prefix: &'static str) -> PhaseSink {
        PhaseSink { registry, prefix }
    }

    fn name_for(&self, kind: SpanKind) -> Option<String> {
        if !kind.is_phase() || kind == SpanKind::Failed {
            return None;
        }
        Some(format!("{}_phase_{}_seconds", self.prefix, kind.as_str()))
    }
}

impl SpanSink for PhaseSink {
    fn record(&self, span: Span) {
        let Some(name) = self.name_for(span.kind) else {
            return;
        };
        self.registry
            .histogram(
                &name,
                "Per-resource phase duration from the span layer.",
                &LATENCY_BUCKETS_S,
            )
            .observe(span.dur_ns() as f64 / 1e9);
    }
}

/// Record one page-load time into the `plt_seconds` histogram.
pub fn record_plt(registry: &Registry, plt: SimDuration) {
    registry
        .histogram(
            "plt_seconds",
            "Page load time distribution.",
            &LATENCY_BUCKETS_S,
        )
        .observe(plt.as_secs_f64());
}

/// Export a fleet world's outcome: the population PLT histogram,
/// per-user goodput gauges, and the bottleneck-queue high-water marks
/// in both denominations.
pub fn export_fleet_metrics(result: &FleetResult, registry: &Registry) {
    let plt = registry.histogram(
        "fleet_plt_seconds",
        "Per-user page load times in the shared world.",
        &LATENCY_BUCKETS_S,
    );
    for user in &result.users {
        plt.observe(user.plt_ms / 1e3);
        registry
            .gauge_with(
                "fleet_user_goodput_bps",
                "Bulk goodput of one user's download.",
                &[("user", &user.user.to_string())],
            )
            .set(user.goodput_bps);
    }
    registry
        .gauge(
            "fleet_queue_max_downlink_packets",
            "High-water backlog of the bottleneck downlink queue.",
        )
        .set(result.max_downlink_queue_packets as f64);
    registry
        .gauge(
            "fleet_queue_max_uplink_packets",
            "High-water backlog of the bottleneck uplink queue.",
        )
        .set(result.max_uplink_queue_packets as f64);
    registry
        .gauge(
            "fleet_queue_max_downlink_bytes",
            "Byte-denominated downlink backlog high-water mark.",
        )
        .set(result.max_downlink_queue_bytes as f64);
    registry
        .gauge(
            "fleet_queue_max_uplink_bytes",
            "Byte-denominated uplink backlog high-water mark.",
        )
        .set(result.max_uplink_queue_bytes as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_buffer_accumulates_and_drains() {
        // Note: shares process-global state with other tests, so only
        // assert on our own marker line surviving the round trip.
        append_trace_jsonl("{\"flow\":999999}\n");
        let drained = take_trace_jsonl();
        assert!(drained.contains("{\"flow\":999999}"));
        assert!(!take_trace_jsonl().contains("999999"));
    }

    #[test]
    fn capture_claim_requires_enable_and_buffer_roundtrips() {
        // The capture flag is process-global, so unit tests leave it
        // off (enabling here would leak capture work into every other
        // concurrently-running harness test).
        assert!(claim_capture_load().is_none());
        append_capture_jsonl("{\"ev\":\"pkt\",\"load\":123456}\n");
        let drained = take_capture_jsonl();
        assert!(drained.contains("123456"));
        assert!(!take_capture_jsonl().contains("123456"));
    }

    #[test]
    fn span_claim_requires_enable_and_buffer_roundtrips() {
        // Like capture, the span flag is process-global; unit tests
        // leave it off and only exercise the buffer round trip.
        assert!(claim_span_load().is_none());
        append_span_jsonl("{\"ev\":\"span\",\"load\":654321}\n");
        let drained = take_span_jsonl();
        assert!(drained.contains("654321"));
        assert!(!take_span_jsonl().contains("654321"));
    }

    #[test]
    fn phase_sink_observes_phase_kinds_only() {
        let registry = Registry::new();
        let sink = PhaseSink::new(registry.clone(), "soak");
        let span = |kind| Span {
            load: 0,
            id: 0,
            parent: 0,
            kind,
            t0_ns: 0,
            t1_ns: 250_000_000,
            res: 0,
            conn: 0,
            url: String::new(),
            detail: String::new(),
        };
        sink.record(span(SpanKind::Queued));
        sink.record(span(SpanKind::Transfer));
        sink.record(span(SpanKind::Page)); // not a phase: ignored
        sink.record(span(SpanKind::Conn)); // not a phase: ignored
        let text = registry.encode();
        assert!(text.contains("soak_phase_queued_seconds_count 1"));
        assert!(text.contains("soak_phase_transfer_seconds_count 1"));
        assert!(!text.contains("soak_phase_page"));
        assert!(!text.contains("soak_phase_conn"));
    }

    #[test]
    fn record_plt_fills_buckets() {
        let registry = Registry::new();
        record_plt(&registry, SimDuration::from_millis(300));
        record_plt(&registry, SimDuration::from_millis(1500));
        let text = registry.encode();
        assert!(text.contains("plt_seconds_count 2"));
        assert!(text.contains("plt_seconds_bucket{le=\"0.5\"} 1"));
    }
}
