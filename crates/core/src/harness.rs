//! The measurement harness: one call = one page load in a fresh,
//! fully-isolated world.
//!
//! Every load builds its own simulator, replay environment, shell stack
//! and browser, mirroring how each mahimahi measurement runs in its own
//! namespaces. Determinism: a [`LoadSpec`] plus a seed fully determines
//! the resulting [`PageLoadResult`].

use std::cell::RefCell;
use std::rc::Rc;

use mm_browser::{Browser, BrowserConfig, PageLoadResult, ProtocolMode, Resolver};
use mm_net::{Host, IpAddr, Namespace, PacketIdGen, SocketAddr};
use mm_record::StoredSite;
use mm_replay::{ReplayConfig, ReplayShell, ServerProtocol};
use mm_shells::{CoDel, DropHead, DropTail, Pie, Qdisc, QueueLimit, ShellStack};
use mm_sim::{RngStream, SimDuration, Simulator};
use mm_trace::Trace;
use mm_web::{apply_live_web_variability, HostProfile, LiveWebConfig};

/// Queue discipline selection for LinkShell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QdiscKind {
    /// Infinite droptail (the paper's configuration).
    Infinite,
    /// Droptail bounded in packets.
    DropTailPackets(usize),
    /// Drophead bounded in packets.
    DropHeadPackets(usize),
    /// CoDel with RFC defaults.
    Codel,
    /// PIE with RFC defaults, given the link rate in Mbit/s.
    Pie(f64),
}

impl QdiscKind {
    pub(crate) fn build(&self) -> Box<dyn Qdisc> {
        match *self {
            QdiscKind::Infinite => Box::new(DropTail::infinite()),
            QdiscKind::DropTailPackets(n) => Box::new(DropTail::new(QueueLimit::Packets(n))),
            QdiscKind::DropHeadPackets(n) => Box::new(DropHead::new(QueueLimit::Packets(n))),
            QdiscKind::Codel => Box::new(CoDel::default_params()),
            QdiscKind::Pie(mbps) => Box::new(Pie::default_params(mbps * 1e6 / 8.0)),
        }
    }
}

/// A LinkShell specification.
#[derive(Clone)]
pub struct LinkSpec {
    pub uplink: Trace,
    pub downlink: Trace,
    pub qdisc: QdiscKind,
}

impl LinkSpec {
    /// Symmetric link from one trace with an infinite droptail queue.
    pub fn symmetric(trace: Trace) -> LinkSpec {
        LinkSpec {
            uplink: trace.clone(),
            downlink: trace,
            qdisc: QdiscKind::Infinite,
        }
    }
}

/// The emulated network between browser and servers: any combination of
/// DelayShell, LinkShell and LossShell, nested in mahimahi order
/// (delay outermost, then link, then loss).
#[derive(Clone, Default)]
pub struct NetSpec {
    /// `mm-delay <ms>`: fixed one-way delay each direction.
    pub delay: Option<SimDuration>,
    /// `mm-link <up> <down>`: trace-driven link.
    pub link: Option<LinkSpec>,
    /// `mm-loss <up> <down>`: i.i.d. loss rates.
    pub loss: Option<(f64, f64)>,
    /// Per-packet forwarding overhead of each shell process
    /// (None = the calibrated default).
    pub shell_overhead: Option<SimDuration>,
}

impl NetSpec {
    /// No emulation at all: bare ReplayShell.
    pub fn none() -> NetSpec {
        NetSpec::default()
    }

    /// Just a delay shell (the paper's `mm-delay <ms>`).
    pub fn delay_ms(ms: u64) -> NetSpec {
        NetSpec {
            delay: Some(SimDuration::from_millis(ms)),
            ..NetSpec::default()
        }
    }
}

/// Everything that defines one measured page load.
pub struct LoadSpec<'a> {
    /// The recorded site to replay.
    pub site: &'a StoredSite,
    /// Replay topology and server think time.
    pub replay: ReplayConfig,
    /// Browser parameters.
    pub browser: BrowserConfig,
    /// The emulated network between browser and servers.
    pub net: NetSpec,
    /// Host machine profile applied to browser and servers (Table 1).
    pub host_profile: Option<HostProfile>,
    /// Live-web variability applied to the servers (Figure 3's
    /// "Actual Web" arm).
    pub live_web: Option<LiveWebConfig>,
    /// TCP configuration for every host in the world (None = defaults).
    /// Lets protocol studies A/B congestion control and socket knobs.
    pub tcp: Option<mm_net::TcpConfig>,
    /// Explicit per-packet/per-request tap for this load, attached to
    /// every shell layer plus the browser and replay boundaries. `None`
    /// falls back to the process-global `--capture-out` capture (see
    /// [`crate::obs::enable_capture`]). Taps only observe: results are
    /// byte-identical with or without one.
    pub capture: Option<mm_capture::TapHandle>,
    /// Explicit causal-span sink for this load, attached to the browser
    /// (page/resource/phase spans), the replay servers (`ServerThink`)
    /// and every host's TCP layer (`ConnSetup`/`HolWait`/`Conn`). `None`
    /// falls back to the process-global `--span-out` channel (see
    /// [`crate::obs::enable_spans`]). Sinks only observe: results are
    /// byte-identical with or without one.
    pub span: Option<mm_trace::SpanHandle>,
    /// Explicit conformance auditor for this load, registered as the
    /// world's metrics sink, packet tap and span sink at once (fanned
    /// out alongside any other sinks). The caller keeps the auditor and
    /// calls [`mm_audit::Auditor::finish`] after the load. `None` falls
    /// back to the process-global `--audit` channel (see
    /// [`crate::obs::enable_audit`]). Auditors only observe: results
    /// are byte-identical with or without one.
    pub audit: Option<mm_audit::Auditor>,
    /// Seed for all stochastic elements of this load.
    pub seed: u64,
}

impl<'a> LoadSpec<'a> {
    /// A plain multi-origin replay load with default settings.
    pub fn new(site: &'a StoredSite) -> LoadSpec<'a> {
        LoadSpec {
            site,
            replay: ReplayConfig::default(),
            browser: BrowserConfig::default(),
            net: NetSpec::none(),
            host_profile: None,
            live_web: None,
            tcp: None,
            capture: None,
            span: None,
            audit: None,
            seed: 0,
        }
    }
}

/// The address the browser host uses inside the innermost namespace.
const BROWSER_IP: IpAddr = IpAddr::new(100, 64, 0, 2);

/// Run one page load to completion and return its result.
///
/// Panics if the site's root URL cannot be fetched (an unusable recording
/// is a harness bug).
pub fn run_page_load(spec: &LoadSpec<'_>) -> PageLoadResult {
    let mut sim = Simulator::new();
    let rng = RngStream::from_seed(spec.seed);
    let ids = PacketIdGen::new();

    // Per-flow trace capture (the experiment bins' `--trace-out`
    // plumbing): when the process-global trace is on and this spec
    // carries no explicit sink, give the load a private tracer and
    // merge its samples on completion. The substituted config differs
    // from the untraced path only in the sink field — hosts fall back
    // to `TcpConfig::default()` when no config flows in, and sinks only
    // observe — so the simulation itself is unchanged.
    let trace = (crate::obs::trace_enabled()
        && spec.tcp.as_ref().is_none_or(|t| t.metrics.is_none()))
    .then(mm_metrics::FlowTracer::new);
    let spec_tcp = match &trace {
        Some(tracer) => Some(
            spec.tcp
                .clone()
                .unwrap_or_default()
                .to_builder()
                .metrics(mm_metrics::MetricsHandle::new(
                    mm_metrics::RegistrySink::with_tracer(
                        mm_metrics::Registry::new(),
                        tracer.clone(),
                    ),
                ))
                .build(),
        ),
        None => spec.tcp.clone(),
    };

    // Per-packet capture (the experiment bins' `--capture-out`
    // plumbing): an explicit tap on the spec wins; otherwise, when the
    // process-global capture is on and its load budget allows, this
    // load records into a private `Capture` merged on completion. Taps
    // only observe, so the simulation is byte-identical either way.
    let claimed = if spec.capture.is_none() {
        crate::obs::claim_capture_load().map(mm_capture::Capture::for_load)
    } else {
        None
    };
    let tap = spec
        .capture
        .clone()
        .or_else(|| claimed.as_ref().map(mm_capture::Capture::handle));

    // Conformance auditing (the experiment bins' `--audit` plumbing):
    // an explicit auditor on the spec wins (its owner calls `finish`);
    // otherwise, when the process-global audit channel is on, this load
    // gets a private auditor whose report is merged on completion. The
    // same auditor instance is fanned into the metrics, tap and span
    // hooks below — the cross-stream checks (qdisc gauge vs packet
    // ledger, server bytes vs browser bytes) need one shared view.
    let audit_claimed = if spec.audit.is_none() {
        crate::obs::claim_audit_load().map(mm_audit::Auditor::for_load)
    } else {
        None
    };
    let audit = spec.audit.clone().or_else(|| audit_claimed.clone());
    let tap = match (&tap, &audit) {
        (Some(t), Some(a)) => Some(mm_capture::TapHandle::new(mm_capture::FanoutTap::new(
            vec![t.clone(), a.tap_handle()],
        ))),
        (None, Some(a)) => Some(a.tap_handle()),
        _ => tap,
    };

    // Causal spans (the experiment bins' `--span-out` plumbing): an
    // explicit sink on the spec wins; otherwise, when the process-global
    // span channel is on and its load budget allows, this load records
    // into a private `TraceBuffer` merged on completion. Sinks only
    // observe, so the simulation is byte-identical either way.
    let span_claimed = if spec.span.is_none() {
        crate::obs::claim_span_load().map(mm_trace::TraceBuffer::for_load)
    } else {
        None
    };
    let span = spec
        .span
        .clone()
        .or_else(|| span_claimed.as_ref().map(mm_trace::TraceBuffer::handle));
    // The auditor's span view rides the same handle: alone, or fanned
    // out behind a recorder (the fanout allocates the ids both see).
    let span = match (&span, &audit) {
        (Some(s), Some(a)) => {
            Some(mm_trace::FanoutSpan::new(vec![s.clone(), a.span_handle()]).handle())
        }
        (None, Some(a)) => Some(a.span_handle()),
        _ => span,
    };
    // The TCP-layer spans ride the same per-load TCP config as flow
    // tracing; like the tracer substitution above, the sink field is the
    // only difference from the unspanned config.
    let spec_tcp = match &span {
        Some(sp) if spec_tcp.as_ref().is_none_or(|t| t.span.is_none()) => Some(
            spec_tcp
                .clone()
                .unwrap_or_default()
                .to_builder()
                .span(sp.clone())
                .build(),
        ),
        _ => spec_tcp,
    };
    // The auditor's TCP-conformance view: fan its metrics sink in next
    // to whatever sink the config already carries (the flow tracer's
    // RegistrySink, or an experimenter's own).
    let spec_tcp = match &audit {
        Some(a) => {
            let base = spec_tcp.unwrap_or_default();
            let metrics = match &base.metrics {
                Some(m) => mm_metrics::MetricsHandle::new(mm_metrics::FanoutSink::new(vec![
                    m.clone(),
                    a.metrics_handle(),
                ])),
                None => a.metrics_handle(),
            };
            Some(base.to_builder().metrics(metrics).build())
        }
        None => spec_tcp,
    };

    // Outermost: ReplayShell's world. The browser's protocol choice is
    // passed through to the servers so both ends of the connection speak
    // the same wire format — one knob on the spec drives the whole stack.
    let mut replay_config = spec.replay.clone();
    if let ProtocolMode::Mux(mux) = &spec.browser.protocol {
        replay_config.protocol = ServerProtocol::Mux(mux.clone());
    }
    // The per-load TCP knob flows through ReplayConfig/BrowserConfig so
    // replay worlds and browsers built outside this harness wire up the
    // same way; an explicit config on either side wins.
    if replay_config.tcp.is_none() {
        replay_config.tcp = spec_tcp.clone();
    }
    if replay_config.capture.is_none() {
        replay_config.capture = tap.clone();
    }
    if replay_config.span.is_none() {
        replay_config.span = span.clone();
    }
    let shell = {
        let root_ns = Namespace::root("replayshell");
        Rc::new(ReplayShell::new(&root_ns, spec.site, replay_config, &ids))
    };
    let root_ns = shell.ns.clone();
    // An explicit IW in `spec.tcp` is the experimenter's ablation knob and
    // must win over the mux deployment default.
    let explicit_iw = spec_tcp.as_ref().and_then(|t| t.initial_cwnd_segments);
    if let ProtocolMode::Mux(mux) = &spec.browser.protocol {
        if explicit_iw.is_none() {
            if let Some(iw) = mux.server_initial_cwnd_segments {
                // Model the deployed SPDY-era server stack: a raised
                // initial cwnd on the servers (only), so one multiplexed
                // connection can match the burst capacity of an HTTP/1.1
                // pool.
                for host in &shell.hosts {
                    host.set_tcp_config(
                        host.tcp_config()
                            .to_builder()
                            .initial_cwnd_segments(iw)
                            .build(),
                    );
                }
            }
        }
    }
    if let Some(live) = &spec.live_web {
        apply_live_web_variability(&shell, live, &rng.fork("live-web"));
    }
    if let Some(profile) = &spec.host_profile {
        for (i, host) in shell.hosts.iter().enumerate() {
            host.set_noise(profile.noise(spec.seed, &format!("server-{i}")));
        }
    }

    // Nested emulation shells. The tap must attach before any layer is
    // added so every shell's direction reports under its point.
    let mut stack = ShellStack::new(&root_ns);
    if let Some(tap) = &tap {
        stack = stack.with_tap(tap.clone());
    }
    // The auditor also observes the qdiscs' own depth gauges and
    // counters, cross-checked against the packet ledger its tap builds.
    if let Some(a) = &audit {
        stack = stack.with_qdisc_metrics(a.metrics_handle());
    }
    if let Some(overhead) = spec.net.shell_overhead {
        stack = stack.with_shell_overhead(overhead);
    }
    if let Some(delay) = spec.net.delay {
        stack = stack.delay(delay);
    }
    if let Some(link) = &spec.net.link {
        let qdisc = link.qdisc;
        stack = stack.link_asymmetric(link.uplink.clone(), link.downlink.clone(), &move || {
            qdisc.build()
        });
    }
    if let Some((up, down)) = spec.net.loss {
        stack = stack.loss(up, down, &rng.fork("loss"));
    }
    let inner_ns = stack.innermost();

    // The browser host, innermost.
    let browser_host = Host::new_in(BROWSER_IP, ids, &inner_ns);
    if let Some(profile) = &spec.host_profile {
        browser_host.set_noise(profile.noise(spec.seed, "browser"));
    }
    let mut browser_config = spec.browser.clone();
    if browser_config.tcp.is_none() {
        browser_config.tcp = spec_tcp.clone();
    }
    if browser_config.capture.is_none() {
        browser_config.capture = tap.clone();
    }
    if browser_config.span.is_none() {
        browser_config.span = span.clone();
    }

    let resolver: Resolver = {
        let shell = shell.clone();
        Rc::new(move |url: &mm_http::Url| {
            let ip: IpAddr = url
                .host
                .parse()
                .expect("replay corpora address hosts by IP literal");
            shell.resolve(SocketAddr::new(ip, url.port))
        })
    };
    let browser = Browser::new(browser_host, resolver, browser_config);
    if let Some(profile) = &spec.host_profile {
        let rng = RngStream::from_seed(spec.seed)
            .fork(&profile.name)
            .fork("browser-cpu");
        browser.set_cpu_jitter(rng, profile.cpu_sigma);
    }

    let result: Rc<RefCell<Option<PageLoadResult>>> = Rc::new(RefCell::new(None));
    let slot = result.clone();
    let root_url = spec.site.root_url.clone();
    browser.navigate(&mut sim, &root_url, move |_sim, r| {
        *slot.borrow_mut() = Some(r);
    });
    sim.run();
    if let Some(tracer) = &trace {
        crate::obs::merge_tracer(tracer);
    }
    if let Some(capture) = &claimed {
        crate::obs::merge_capture(capture);
    }
    if let Some(buf) = &span_claimed {
        crate::obs::merge_spans(buf);
    }
    if let Some(a) = &audit_claimed {
        crate::obs::append_audit_jsonl(&a.finish().to_jsonl());
    }
    let r = result
        .borrow_mut()
        .take()
        .expect("page load did not complete; dead recording or network");
    r
}

/// Run `n` loads of the same spec with per-load seeds forked from
/// `spec.seed`, returning each PLT in milliseconds.
pub fn run_loads(spec: &LoadSpec<'_>, n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let load_spec = LoadSpec {
                site: spec.site,
                replay: spec.replay.clone(),
                browser: spec.browser.clone(),
                net: spec.net.clone(),
                host_profile: spec.host_profile.clone(),
                live_web: spec.live_web.clone(),
                tcp: spec.tcp.clone(),
                capture: spec.capture.clone(),
                span: spec.span.clone(),
                audit: spec.audit.clone(),
                seed: spec.seed.wrapping_mul(1_000_003).wrapping_add(i as u64),
            };
            run_page_load(&load_spec).plt.as_millis_f64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_corpus::{materialize, plan_site, SiteParams};
    use mm_replay::ReplayMode;
    use mm_trace::constant_rate;

    fn small_site() -> StoredSite {
        let params = SiteParams {
            servers: Some(6),
            median_objects: 18.0,
            ..SiteParams::default()
        };
        let plan = plan_site(950, &params, &mut RngStream::from_seed(7));
        materialize(&plan)
    }

    #[test]
    fn bare_replay_load_completes() {
        let site = small_site();
        let r = run_page_load(&LoadSpec::new(&site));
        assert_eq!(r.failures, 0);
        assert!(r.resource_count() >= 19);
        assert!(r.plt > SimDuration::from_millis(50), "plt {}", r.plt);
    }

    #[test]
    fn delay_shell_increases_plt() {
        let site = small_site();
        let bare = run_page_load(&LoadSpec::new(&site)).plt;
        let mut spec = LoadSpec::new(&site);
        spec.net = NetSpec::delay_ms(100);
        let delayed = run_page_load(&spec).plt;
        assert!(
            delayed > bare + SimDuration::from_millis(150),
            "bare {bare}, delayed {delayed}"
        );
    }

    #[test]
    fn slow_link_increases_plt() {
        let site = small_site();
        let mut fast = LoadSpec::new(&site);
        fast.net.link = Some(LinkSpec::symmetric(constant_rate(100.0, 1000)));
        let mut slow = LoadSpec::new(&site);
        slow.net.link = Some(LinkSpec::symmetric(constant_rate(1.0, 1000)));
        let f = run_page_load(&fast).plt;
        let s = run_page_load(&slow).plt;
        assert!(s > f, "slow {s} vs fast {f}");
        // 1 Mbit/s on a ~500 KB page: transfer alone is ≥ 3 s.
        assert!(s > SimDuration::from_secs(2), "slow {s}");
    }

    #[test]
    fn loss_increases_plt() {
        let site = small_site();
        let mut clean = LoadSpec::new(&site);
        clean.net = NetSpec::delay_ms(20);
        let mut lossy = LoadSpec::new(&site);
        lossy.net = NetSpec::delay_ms(20);
        lossy.net.loss = Some((0.05, 0.05));
        let c = run_page_load(&clean).plt;
        let l = run_page_load(&lossy).plt;
        assert!(l > c, "lossy {l} vs clean {c}");
    }

    #[test]
    fn single_server_slower_at_high_bandwidth() {
        // Needs a site big enough for single-server CGI contention to
        // outrun the browser's own CPU time (the Table 2 mechanism).
        let params = SiteParams {
            servers: Some(20),
            median_objects: 120.0,
            ..SiteParams::default()
        };
        let plan = plan_site(951, &params, &mut RngStream::from_seed(8));
        let site = materialize(&plan);
        let net = NetSpec {
            delay: Some(SimDuration::from_millis(30)),
            link: Some(LinkSpec::symmetric(constant_rate(25.0, 1000))),
            ..NetSpec::default()
        };
        let mut multi = LoadSpec::new(&site);
        multi.net = net.clone();
        let mut single = LoadSpec::new(&site);
        single.net = net;
        single.replay.mode = ReplayMode::SingleServer;
        let m = run_page_load(&multi).plt;
        let s = run_page_load(&single).plt;
        assert!(s > m, "single {s} vs multi {m}");
    }

    #[test]
    fn determinism_same_seed_same_plt() {
        let site = small_site();
        let mut a = LoadSpec::new(&site);
        a.net = NetSpec::delay_ms(30);
        a.seed = 42;
        let mut b = LoadSpec::new(&site);
        b.net = NetSpec::delay_ms(30);
        b.seed = 42;
        assert_eq!(run_page_load(&a).plt, run_page_load(&b).plt);
    }

    #[test]
    fn capture_tap_is_byte_identical_and_nonempty() {
        // The per-packet tap must only observe: the same spec with a
        // capture attached produces the exact same simulation, while the
        // capture itself fills with link/packet/http events.
        let site = small_site();
        let net = NetSpec {
            delay: Some(SimDuration::from_millis(20)),
            link: Some(LinkSpec::symmetric(constant_rate(8.0, 1000))),
            loss: Some((0.01, 0.01)),
            ..NetSpec::default()
        };
        let mut bare = LoadSpec::new(&site);
        bare.net = net.clone();
        bare.seed = 42;
        let mut tapped = LoadSpec::new(&site);
        tapped.net = net;
        tapped.seed = 42;
        let capture = mm_capture::Capture::for_load(7);
        tapped.capture = Some(capture.handle());
        let a = run_page_load(&bare);
        let b = run_page_load(&tapped);
        assert_eq!(a.plt, b.plt, "tap must not perturb the simulation");
        assert_eq!(a.total_body_bytes, b.total_body_bytes);
        let data = capture.data();
        assert!(!data.links.is_empty(), "link meta recorded");
        let has = |k| data.packets.iter().any(|p| p.kind == k);
        assert!(has(mm_capture::PacketEventKind::Enqueue));
        assert!(has(mm_capture::PacketEventKind::Dequeue));
        assert!(has(mm_capture::PacketEventKind::Deliver));
        assert!(!data.https.is_empty(), "http events recorded");
        let jsonl = capture.take_jsonl();
        assert!(jsonl.contains("\"ev\":\"link\""));
        assert!(jsonl.contains("\"ev\":\"pkt\""));
        assert!(jsonl.contains("\"ev\":\"http\""));
    }

    #[test]
    fn host_noise_perturbs_but_barely() {
        let site = small_site();
        let mut base = LoadSpec::new(&site);
        base.net = NetSpec::delay_ms(30);
        let quiet = run_page_load(&base).plt;
        let mut noisy_spec = LoadSpec::new(&site);
        noisy_spec.net = NetSpec::delay_ms(30);
        noisy_spec.host_profile = Some(HostProfile::machine_1());
        let noisy = run_page_load(&noisy_spec).plt;
        assert_ne!(quiet, noisy);
        let rel = (noisy.as_millis_f64() - quiet.as_millis_f64()).abs() / quiet.as_millis_f64();
        assert!(rel < 0.05, "noise shifted PLT by {}%", rel * 100.0);
    }

    #[test]
    fn run_loads_varies_with_noise() {
        let site = small_site();
        let mut spec = LoadSpec::new(&site);
        spec.net = NetSpec::delay_ms(10);
        spec.host_profile = Some(HostProfile::machine_1());
        let plts = run_loads(&spec, 5);
        assert_eq!(plts.len(), 5);
        let distinct: std::collections::HashSet<u64> =
            plts.iter().map(|p| (p * 1000.0) as u64).collect();
        assert!(distinct.len() > 1, "noise must vary across loads");
    }
}
