//! Offline capture analysis: throughput-vs-capacity binning, queueing-
//! delay percentile bands, and HTTP resource waterfalls.
//!
//! All functions work on one [`CaptureData`] at a time — loads run in
//! separate simulations with separate clocks, so events from different
//! loads are never combined.

use std::collections::BTreeMap;

use mm_capture::{CaptureData, HttpPhase, LinkMeta, PacketEventKind, TapPoint, NO_RESOURCE};

const NS_PER_MS: u64 = 1_000_000;

/// One time bin of a throughput series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThroughputBin {
    /// Bin start, in sim milliseconds.
    pub t_ms: u64,
    /// Bytes the link delivered in this bin.
    pub delivered_bytes: u64,
    /// Bytes the trace *offered* in this bin (delivery opportunities ×
    /// MTU) — mahimahi's shaded capacity region.
    pub capacity_bytes: u64,
}

/// Binned delivered-vs-capacity series for one link direction.
#[derive(Debug, Clone)]
pub struct ThroughputSeries {
    pub point: TapPoint,
    pub bin_ms: u64,
    pub bins: Vec<ThroughputBin>,
}

impl ThroughputSeries {
    /// Total bytes delivered across all bins.
    pub fn delivered_total(&self) -> u64 {
        self.bins.iter().map(|b| b.delivered_bytes).sum()
    }
}

/// Megabits per second a byte count over `bin_ms` corresponds to.
pub fn mbps(bytes: u64, bin_ms: u64) -> f64 {
    if bin_ms == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / (bin_ms as f64 / 1000.0) / 1e6
}

/// Number of trace delivery opportunities strictly before `t_ms`,
/// honoring the trace's indefinite wrap (`t(i) = (i/n)·period + d[i%n]`).
fn opportunities_before(meta: &LinkMeta, t_ms: u64) -> u64 {
    let n = meta.deliveries_ms.len() as u64;
    if n == 0 || meta.period_ms == 0 {
        return 0;
    }
    let full = t_ms / meta.period_ms;
    let rem = t_ms % meta.period_ms;
    let in_partial = meta.deliveries_ms.iter().filter(|&&d| d < rem).count() as u64;
    full * n + in_partial
}

/// Bin every instrumented link's Deliver events into `bin_ms` windows,
/// pairing each bin with the capacity its trace offered over the same
/// window. The sum of `delivered_bytes` across bins equals the total
/// bytes delivered (no event is lost to binning).
pub fn throughput(data: &CaptureData, bin_ms: u64) -> Vec<ThroughputSeries> {
    assert!(bin_ms > 0, "bin width must be positive");
    let mut out = Vec::new();
    for meta in &data.links {
        let delivers: Vec<_> = data
            .packets
            .iter()
            .filter(|p| p.point == meta.point && p.kind == PacketEventKind::Deliver)
            .collect();
        let end_ns = delivers.iter().map(|p| p.t_ns).max().unwrap_or(0);
        let n_bins = (end_ns / NS_PER_MS / bin_ms + 1) as usize;
        let mut bins: Vec<ThroughputBin> = (0..n_bins as u64)
            .map(|i| ThroughputBin {
                t_ms: i * bin_ms,
                delivered_bytes: 0,
                capacity_bytes: (opportunities_before(meta, (i + 1) * bin_ms)
                    - opportunities_before(meta, i * bin_ms))
                    * meta.mtu_bytes as u64,
            })
            .collect();
        for p in delivers {
            let idx = (p.t_ns / NS_PER_MS / bin_ms) as usize;
            bins[idx].delivered_bytes += p.size_bytes as u64;
        }
        out.push(ThroughputSeries {
            point: meta.point,
            bin_ms,
            bins,
        });
    }
    out
}

/// One per-packet queueing-delay observation (a Dequeue event).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelaySample {
    pub t_ns: u64,
    pub sojourn_ns: u64,
}

/// Per-packet queueing delays observed at `point`, in event order.
pub fn delay_samples(data: &CaptureData, point: TapPoint) -> Vec<DelaySample> {
    data.packets
        .iter()
        .filter(|p| p.point == point && p.kind == PacketEventKind::Dequeue)
        .map(|p| DelaySample {
            t_ns: p.t_ns,
            sojourn_ns: p.sojourn_ns,
        })
        .collect()
}

/// Percentile summary of one delay bin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayBand {
    /// Bin start, in sim milliseconds.
    pub t_ms: u64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub max_ms: f64,
    /// Samples in the bin.
    pub n: usize,
}

/// Nearest-rank percentile over an ascending-sorted slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Summarize delay samples into per-bin percentile bands. Bins with no
/// samples are omitted (an idle queue has no sojourn to report).
pub fn delay_bands(samples: &[DelaySample], bin_ms: u64) -> Vec<DelayBand> {
    assert!(bin_ms > 0, "bin width must be positive");
    let mut by_bin: BTreeMap<u64, Vec<f64>> = BTreeMap::new();
    for s in samples {
        let bin = s.t_ns / NS_PER_MS / bin_ms;
        by_bin
            .entry(bin)
            .or_default()
            .push(s.sojourn_ns as f64 / NS_PER_MS as f64);
    }
    by_bin
        .into_iter()
        .map(|(bin, mut v)| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            DelayBand {
                t_ms: bin * bin_ms,
                p50_ms: percentile(&v, 50.0),
                p95_ms: percentile(&v, 95.0),
                max_ms: *v.last().unwrap(),
                n: v.len(),
            }
        })
        .collect()
}

/// One resource's row in the page-load waterfall.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfallRow {
    pub resource: u32,
    pub url: String,
    /// Discovery time (the `Queued` event).
    pub queued_ns: u64,
    /// First request-on-the-wire time, if the request was ever sent.
    pub sent_ns: Option<u64>,
    /// Completion (`Done`) or final-failure (`Failed`) time.
    pub finished_ns: Option<u64>,
    pub status: u16,
    pub bytes: u64,
    pub failed: bool,
}

/// Assemble the browser-side HTTP events into per-resource waterfall
/// rows, ordered by discovery time. Server-side events (tagged
/// [`NO_RESOURCE`]) are skipped — they carry no resource index; join on
/// URL if server-side timing is wanted.
pub fn waterfall(data: &CaptureData) -> Vec<WaterfallRow> {
    let mut rows: BTreeMap<u32, WaterfallRow> = BTreeMap::new();
    for h in &data.https {
        if h.resource == NO_RESOURCE {
            continue;
        }
        let row = rows.entry(h.resource).or_insert_with(|| WaterfallRow {
            resource: h.resource,
            url: h.url.clone(),
            queued_ns: h.t_ns,
            sent_ns: None,
            finished_ns: None,
            status: 0,
            bytes: 0,
            failed: false,
        });
        match h.phase {
            HttpPhase::Queued => {
                row.queued_ns = h.t_ns;
                row.url = h.url.clone();
            }
            // First send starts the network phase; a retried request
            // keeps its original start (the wait was real).
            HttpPhase::Sent => {
                if row.sent_ns.is_none() {
                    row.sent_ns = Some(h.t_ns);
                }
            }
            HttpPhase::Done => {
                row.finished_ns = Some(h.t_ns);
                row.status = h.status;
                row.bytes = h.bytes;
                row.failed = false;
            }
            HttpPhase::Failed => {
                row.finished_ns = Some(h.t_ns);
                row.failed = true;
            }
            HttpPhase::ServerRecv | HttpPhase::ServerSent => {}
        }
    }
    let mut rows: Vec<WaterfallRow> = rows.into_values().collect();
    rows.sort_by_key(|r| (r.queued_ns, r.resource));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_capture::{Dir, HttpEvent, PacketEvent, PointKind};

    fn point() -> TapPoint {
        TapPoint {
            kind: PointKind::Link,
            index: 1,
            dir: Dir::Down,
        }
    }

    fn deliver(t_ms: u64, size: u32) -> PacketEvent {
        PacketEvent {
            t_ns: t_ms * NS_PER_MS,
            kind: PacketEventKind::Deliver,
            point: point(),
            pkt_id: t_ms,
            size_bytes: size,
            sojourn_ns: 0,
            flow: 0,
        }
    }

    fn meta() -> LinkMeta {
        LinkMeta {
            point: point(),
            // One opportunity per ms.
            deliveries_ms: (0..10).collect(),
            period_ms: 10,
            mtu_bytes: 1500,
        }
    }

    #[test]
    fn throughput_bins_preserve_totals_and_capacity_wraps() {
        let data = CaptureData {
            load: 0,
            links: vec![meta()],
            packets: vec![deliver(0, 1500), deliver(1, 700), deliver(25, 1500)],
            https: vec![],
            dropped: 0,
        };
        let series = throughput(&data, 10);
        assert_eq!(series.len(), 1);
        let s = &series[0];
        assert_eq!(s.bins.len(), 3);
        assert_eq!(s.bins[0].delivered_bytes, 2200);
        assert_eq!(s.bins[1].delivered_bytes, 0);
        assert_eq!(s.bins[2].delivered_bytes, 1500);
        assert_eq!(s.delivered_total(), 3700);
        // 10 opportunities per 10 ms bin, wrapping past the 10 ms period.
        for b in &s.bins {
            assert_eq!(b.capacity_bytes, 10 * 1500, "bin at {}", b.t_ms);
        }
    }

    #[test]
    fn delay_bands_summarize_sojourns() {
        let samples: Vec<DelaySample> = (0..100)
            .map(|i| DelaySample {
                t_ns: i * NS_PER_MS, // one per ms, all in one 200 ms bin
                sojourn_ns: (i + 1) * NS_PER_MS,
            })
            .collect();
        let bands = delay_bands(&samples, 200);
        assert_eq!(bands.len(), 1);
        let b = &bands[0];
        assert_eq!(b.n, 100);
        assert_eq!(b.max_ms, 100.0);
        assert!((b.p50_ms - 51.0).abs() < 1.5, "p50 {}", b.p50_ms);
        assert!((b.p95_ms - 95.0).abs() < 1.5, "p95 {}", b.p95_ms);
    }

    #[test]
    fn waterfall_rows_track_phases() {
        let mk = |t_ns, phase, resource, url: &str, status, bytes| HttpEvent {
            t_ns,
            phase,
            resource,
            url: url.to_string(),
            status,
            bytes,
        };
        let data = CaptureData {
            load: 0,
            links: vec![],
            packets: vec![],
            https: vec![
                mk(10, HttpPhase::Queued, 0, "http://a/", 0, 0),
                mk(12, HttpPhase::Sent, 0, "http://a/", 0, 0),
                mk(90, HttpPhase::Done, 0, "http://a/", 200, 5000),
                mk(20, HttpPhase::Queued, 1, "http://a/x.js", 0, 0),
                mk(22, HttpPhase::Sent, 1, "http://a/x.js", 0, 0),
                mk(99, HttpPhase::Failed, 1, "http://a/x.js", 0, 0),
                // Server-side events must be ignored here.
                mk(15, HttpPhase::ServerRecv, NO_RESOURCE, "/", 0, 0),
            ],
            dropped: 0,
        };
        let rows = waterfall(&data);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].resource, 0);
        assert_eq!(rows[0].sent_ns, Some(12));
        assert_eq!(rows[0].finished_ns, Some(90));
        assert_eq!(rows[0].status, 200);
        assert!(!rows[0].failed);
        assert!(rows[1].failed);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=4).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert_eq!(percentile(&v, 50.0), 3.0); // round(1.5) = 2 ⇒ v[2]
        assert_eq!(percentile(&[], 50.0), 0.0);
    }
}
