//! A zero-dependency SVG writer.
//!
//! Emits plain SVG 1.1 text with deterministic number formatting (two
//! decimal places, trailing zeros trimmed), so rendered artifacts are
//! byte-stable across runs and platforms — a requirement for the
//! golden-file tests and for diffable CI archives. SVG rather than a
//! raster format because it needs no image codec (keeping the crate
//! dependency-free), stays legible at any zoom, and diffs as text.

/// Deterministic float formatting: fixed two decimals, then trailing
/// zeros and a bare point trimmed (`12.50` → `12.5`, `3.00` → `3`).
pub fn fnum(v: f64) -> String {
    let v = if v.is_finite() { v } else { 0.0 };
    let s = format!("{v:.2}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() {
        "0".to_string()
    } else {
        s.to_string()
    }
}

fn esc_xml(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// An SVG document under construction.
pub struct Svg {
    width: u32,
    height: u32,
    body: String,
}

impl Svg {
    /// A document of the given pixel size with a white background.
    pub fn new(width: u32, height: u32) -> Svg {
        let mut svg = Svg {
            width,
            height,
            body: String::new(),
        };
        svg.rect(0.0, 0.0, width as f64, height as f64, "#ffffff");
        svg
    }

    pub fn rect(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str) {
        self.body.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"/>\n",
            fnum(x),
            fnum(y),
            fnum(w.max(0.0)),
            fnum(h.max(0.0)),
            fill,
        ));
    }

    /// A rect with a `<title>` child (hover tooltip in browsers).
    pub fn rect_titled(&mut self, x: f64, y: f64, w: f64, h: f64, fill: &str, title: &str) {
        self.body.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" fill=\"{}\"><title>{}</title></rect>\n",
            fnum(x),
            fnum(y),
            fnum(w.max(0.0)),
            fnum(h.max(0.0)),
            fill,
            esc_xml(title),
        ));
    }

    pub fn line(&mut self, x1: f64, y1: f64, x2: f64, y2: f64, stroke: &str, width: f64) {
        self.body.push_str(&format!(
            "<line x1=\"{}\" y1=\"{}\" x2=\"{}\" y2=\"{}\" stroke=\"{}\" stroke-width=\"{}\"/>\n",
            fnum(x1),
            fnum(y1),
            fnum(x2),
            fnum(y2),
            stroke,
            fnum(width),
        ));
    }

    pub fn polyline(&mut self, pts: &[(f64, f64)], stroke: &str, width: f64) {
        if pts.is_empty() {
            return;
        }
        let mut points = String::new();
        for (i, (x, y)) in pts.iter().enumerate() {
            if i > 0 {
                points.push(' ');
            }
            points.push_str(&format!("{},{}", fnum(*x), fnum(*y)));
        }
        self.body.push_str(&format!(
            "<polyline points=\"{points}\" fill=\"none\" stroke=\"{}\" stroke-width=\"{}\"/>\n",
            stroke,
            fnum(width),
        ));
    }

    /// A closed filled polygon (used for capacity areas and bands).
    pub fn polygon(&mut self, pts: &[(f64, f64)], fill: &str) {
        if pts.is_empty() {
            return;
        }
        let mut points = String::new();
        for (i, (x, y)) in pts.iter().enumerate() {
            if i > 0 {
                points.push(' ');
            }
            points.push_str(&format!("{},{}", fnum(*x), fnum(*y)));
        }
        self.body
            .push_str(&format!("<polygon points=\"{points}\" fill=\"{fill}\"/>\n"));
    }

    pub fn circle(&mut self, x: f64, y: f64, r: f64, fill: &str) {
        self.body.push_str(&format!(
            "<circle cx=\"{}\" cy=\"{}\" r=\"{}\" fill=\"{}\"/>\n",
            fnum(x),
            fnum(y),
            fnum(r),
            fill,
        ));
    }

    /// Text anchored `start`, `middle`, or `end` at (x, y).
    pub fn text(&mut self, x: f64, y: f64, size: u32, anchor: &str, fill: &str, s: &str) {
        self.body.push_str(&format!(
            "<text x=\"{}\" y=\"{}\" font-size=\"{}\" font-family=\"sans-serif\" \
             text-anchor=\"{}\" fill=\"{}\">{}</text>\n",
            fnum(x),
            fnum(y),
            size,
            anchor,
            fill,
            esc_xml(s),
        ));
    }

    /// The finished document.
    pub fn finish(self) -> String {
        format!(
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{}\" height=\"{}\" \
             viewBox=\"0 0 {} {}\">\n{}</svg>\n",
            self.width, self.height, self.width, self.height, self.body,
        )
    }
}

/// A rectangular plot area with data-space → pixel-space mapping and a
/// standard frame (border, ticks, axis labels).
pub struct Plot {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
    pub xmin: f64,
    pub xmax: f64,
    pub ymin: f64,
    pub ymax: f64,
}

impl Plot {
    /// Data x → pixel x.
    pub fn sx(&self, v: f64) -> f64 {
        let span = (self.xmax - self.xmin).max(f64::MIN_POSITIVE);
        self.x + (v - self.xmin) / span * self.w
    }

    /// Data y → pixel y (inverted: larger values are higher).
    pub fn sy(&self, v: f64) -> f64 {
        let span = (self.ymax - self.ymin).max(f64::MIN_POSITIVE);
        self.y + self.h - (v - self.ymin) / span * self.h
    }

    /// Draw the plot frame: border, 5 ticks per axis, axis labels.
    pub fn frame(&self, svg: &mut Svg, xlabel: &str, ylabel: &str) {
        svg.line(self.x, self.y, self.x, self.y + self.h, "#404040", 1.0);
        svg.line(
            self.x,
            self.y + self.h,
            self.x + self.w,
            self.y + self.h,
            "#404040",
            1.0,
        );
        const TICKS: u32 = 5;
        for i in 0..=TICKS {
            let f = i as f64 / TICKS as f64;
            let xv = self.xmin + f * (self.xmax - self.xmin);
            let yv = self.ymin + f * (self.ymax - self.ymin);
            let px = self.sx(xv);
            let py = self.sy(yv);
            svg.line(
                px,
                self.y + self.h,
                px,
                self.y + self.h + 4.0,
                "#404040",
                1.0,
            );
            svg.text(
                px,
                self.y + self.h + 16.0,
                10,
                "middle",
                "#404040",
                &fnum(xv),
            );
            svg.line(self.x - 4.0, py, self.x, py, "#404040", 1.0);
            svg.text(self.x - 6.0, py + 3.0, 10, "end", "#404040", &fnum(yv));
        }
        svg.text(
            self.x + self.w / 2.0,
            self.y + self.h + 32.0,
            11,
            "middle",
            "#202020",
            xlabel,
        );
        // Vertical-ish y label: rendered horizontally above the axis to
        // avoid transform attributes (keeps the writer minimal).
        svg.text(self.x - 6.0, self.y - 8.0, 11, "start", "#202020", ylabel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnum_is_deterministic_and_trimmed() {
        assert_eq!(fnum(12.50), "12.5");
        assert_eq!(fnum(3.00), "3");
        assert_eq!(fnum(0.254), "0.25");
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(-0.001), "-0");
        assert_eq!(fnum(f64::NAN), "0");
    }

    #[test]
    fn document_structure_and_escaping() {
        let mut svg = Svg::new(100, 50);
        svg.text(1.0, 2.0, 10, "start", "#000", "a<b&\"c\"");
        let out = svg.finish();
        assert!(out.starts_with("<svg xmlns"));
        assert!(out.ends_with("</svg>\n"));
        assert!(out.contains("a&lt;b&amp;&quot;c&quot;"));
    }

    #[test]
    fn plot_maps_corners() {
        let p = Plot {
            x: 10.0,
            y: 20.0,
            w: 100.0,
            h: 50.0,
            xmin: 0.0,
            xmax: 10.0,
            ymin: 0.0,
            ymax: 5.0,
        };
        assert_eq!(p.sx(0.0), 10.0);
        assert_eq!(p.sx(10.0), 110.0);
        assert_eq!(p.sy(0.0), 70.0);
        assert_eq!(p.sy(5.0), 20.0);
    }
}
