//! # mm-graph — offline capture analyzer
//!
//! Consumes the per-packet/per-request captures `mm-capture` writes
//! (`--capture-out` on every experiment bin) and emits mahimahi-style
//! artifacts with a zero-dependency SVG writer:
//!
//! - per-link **throughput-vs-capacity** timeseries (the
//!   `mm-throughput-graph` shaded-capacity convention),
//! - per-packet **queueing-delay** scatter with p50/p95 percentile
//!   bands (`mm-delay-graph`),
//! - an **HTTP resource waterfall** per page load, from the events
//!   tapped at the browser/replay boundary.
//!
//! The `mmgraph` bin drives [`render_capture`] over a capture file or
//! directory; each graph also gets a CSV twin so numbers stay
//! machine-checkable.

pub mod analyze;
pub mod parse;
pub mod render;
pub mod svg;

pub use analyze::{
    delay_bands, delay_samples, mbps, percentile, throughput, waterfall, DelayBand, DelaySample,
    ThroughputBin, ThroughputSeries, WaterfallRow,
};
pub use parse::{parse_capture_bytes, parse_jsonl};
pub use render::{
    delay_csv, delay_svg, throughput_csv, throughput_svg, waterfall_csv, waterfall_svg,
};

use mm_capture::CaptureData;

/// One rendered output file (name is relative to the chosen out dir).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Artifact {
    pub name: String,
    pub content: String,
}

/// Default bin width for timeseries graphs, matching mahimahi's
/// `mm-throughput-graph` half-second binning spirit at sim timescales.
pub const DEFAULT_BIN_MS: u64 = 200;

/// Render every artifact one capture supports: per instrumented link a
/// throughput SVG/CSV pair and (when the link saw queue activity) a
/// queueing-delay pair, plus one waterfall pair when browser-side HTTP
/// events are present. Deterministic: same capture ⇒ same bytes.
pub fn render_capture(data: &CaptureData, bin_ms: u64) -> Vec<Artifact> {
    let mut out = Vec::new();
    let load = data.load;
    for series in throughput(data, bin_ms) {
        let label = series.point.label();
        out.push(Artifact {
            name: format!("load{load}-throughput-{label}.svg"),
            content: throughput_svg(&series, &format!("load {load} · {label} · throughput")),
        });
        out.push(Artifact {
            name: format!("load{load}-throughput-{label}.csv"),
            content: throughput_csv(&series),
        });
        let samples = delay_samples(data, series.point);
        if !samples.is_empty() {
            let bands = delay_bands(&samples, bin_ms);
            out.push(Artifact {
                name: format!("load{load}-delay-{label}.svg"),
                content: delay_svg(
                    &samples,
                    &bands,
                    &format!("load {load} · {label} · queueing delay"),
                ),
            });
            out.push(Artifact {
                name: format!("load{load}-delay-{label}.csv"),
                content: delay_csv(&bands),
            });
        }
    }
    let rows = waterfall(data);
    if !rows.is_empty() {
        out.push(Artifact {
            name: format!("load{load}-waterfall.svg"),
            content: waterfall_svg(&rows, &format!("load {load} · resource waterfall")),
        });
        out.push(Artifact {
            name: format!("load{load}-waterfall.csv"),
            content: waterfall_csv(&rows),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_capture::{
        Dir, HttpEvent, HttpPhase, LinkMeta, PacketEvent, PacketEventKind, PointKind, TapPoint,
    };

    fn sample_capture() -> CaptureData {
        let point = TapPoint {
            kind: PointKind::Link,
            index: 1,
            dir: Dir::Down,
        };
        let mut packets = Vec::new();
        for i in 0..50u64 {
            packets.push(PacketEvent {
                t_ns: i * 10_000_000,
                kind: PacketEventKind::Dequeue,
                point,
                pkt_id: i,
                size_bytes: 1500,
                sojourn_ns: (i % 7) * 1_000_000,
                flow: 0,
            });
            packets.push(PacketEvent {
                t_ns: i * 10_000_000,
                kind: PacketEventKind::Deliver,
                point,
                pkt_id: i,
                size_bytes: 1500,
                sojourn_ns: 0,
                flow: 0,
            });
        }
        CaptureData {
            load: 4,
            links: vec![LinkMeta {
                point,
                deliveries_ms: (0..10).collect(),
                period_ms: 10,
                mtu_bytes: 1500,
            }],
            packets,
            https: vec![
                HttpEvent {
                    t_ns: 0,
                    phase: HttpPhase::Queued,
                    resource: 0,
                    url: "http://10.0.0.1/".into(),
                    status: 0,
                    bytes: 0,
                },
                HttpEvent {
                    t_ns: 400_000_000,
                    phase: HttpPhase::Done,
                    resource: 0,
                    url: "http://10.0.0.1/".into(),
                    status: 200,
                    bytes: 9000,
                },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn render_emits_all_artifact_kinds() {
        let arts = render_capture(&sample_capture(), 100);
        let names: Vec<&str> = arts.iter().map(|a| a.name.as_str()).collect();
        assert!(
            names.contains(&"load4-throughput-link1-down.svg"),
            "{names:?}"
        );
        assert!(names.contains(&"load4-throughput-link1-down.csv"));
        assert!(names.contains(&"load4-delay-link1-down.svg"));
        assert!(names.contains(&"load4-delay-link1-down.csv"));
        assert!(names.contains(&"load4-waterfall.svg"));
        assert!(names.contains(&"load4-waterfall.csv"));
    }

    #[test]
    fn render_is_deterministic() {
        let data = sample_capture();
        assert_eq!(render_capture(&data, 100), render_capture(&data, 100));
    }

    use proptest::prelude::*;

    proptest! {
        /// Integrating the throughput series over all bins recovers the
        /// exact number of bytes delivered — binning loses nothing.
        #[test]
        fn throughput_integration_equals_bytes_delivered(
            sizes in proptest::collection::vec(40u32..1500, 1..200),
            gaps_ms in proptest::collection::vec(0u64..50, 1..200),
            bin_ms in 1u64..500,
        ) {
            let point = TapPoint { kind: PointKind::Link, index: 1, dir: Dir::Up };
            let mut t_ms = 0u64;
            let mut packets = Vec::new();
            for (i, (size, gap)) in sizes.iter().zip(gaps_ms.iter().cycle()).enumerate() {
                t_ms += gap;
                packets.push(PacketEvent {
                    t_ns: t_ms * 1_000_000,
                    kind: PacketEventKind::Deliver,
                    point,
                    pkt_id: i as u64,
                    size_bytes: *size,
                    sojourn_ns: 0,
                    flow: 0,
                });
            }
            let expected: u64 = sizes.iter().map(|&s| s as u64).sum();
            let data = CaptureData {
                load: 0,
                links: vec![LinkMeta {
                    point,
                    deliveries_ms: vec![0].into(),
                    period_ms: 1,
                    mtu_bytes: 1500,
                }],
                packets,
                https: vec![],
                dropped: 0,
            };
            let series = throughput(&data, bin_ms);
            prop_assert_eq!(series.len(), 1);
            prop_assert_eq!(series[0].delivered_total(), expected);
        }
    }
}
