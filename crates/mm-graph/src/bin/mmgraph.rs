//! `mmgraph` — render capture files into SVG graphs and CSV tables.
//!
//! Usage:
//!
//! ```text
//! mmgraph <capture.jsonl | capture.bin | dir> [--out <dir>] [--bin-ms <n>]
//! ```
//!
//! Given a directory (e.g. an experiment's `--capture-out` dir), looks
//! for `capture.jsonl` then `capture.bin` inside it. Artifacts are
//! written next to the input unless `--out` says otherwise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use mm_graph::{parse_capture_bytes, render_capture, DEFAULT_BIN_MS};

fn usage() -> ExitCode {
    eprintln!("usage: mmgraph <capture.jsonl|capture.bin|dir> [--out <dir>] [--bin-ms <n>]");
    ExitCode::from(2)
}

fn resolve_input(path: &Path) -> Result<PathBuf, String> {
    if path.is_dir() {
        for name in ["capture.jsonl", "capture.bin"] {
            let candidate = path.join(name);
            if candidate.is_file() {
                return Ok(candidate);
            }
        }
        return Err(format!(
            "no capture.jsonl or capture.bin in {}",
            path.display()
        ));
    }
    if path.is_file() {
        return Ok(path.to_path_buf());
    }
    Err(format!("no such file or directory: {}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut input: Option<PathBuf> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut bin_ms = DEFAULT_BIN_MS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                out_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--bin-ms" => {
                let Some(v) = args.get(i + 1) else {
                    return usage();
                };
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => bin_ms = n,
                    _ => {
                        eprintln!("mmgraph: --bin-ms wants a positive integer, got {v:?}");
                        return ExitCode::from(2);
                    }
                }
                i += 2;
            }
            a if a.starts_with("--") => return usage(),
            a => {
                if input.is_some() {
                    return usage();
                }
                input = Some(PathBuf::from(a));
                i += 1;
            }
        }
    }
    let Some(input) = input else {
        return usage();
    };

    let file = match resolve_input(&input) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("mmgraph: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bytes = match std::fs::read(&file) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("mmgraph: read {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    let captures = match parse_capture_bytes(&bytes) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("mmgraph: parse {}: {e}", file.display());
            return ExitCode::FAILURE;
        }
    };
    if captures.is_empty() {
        eprintln!("mmgraph: {} holds no events", file.display());
        return ExitCode::FAILURE;
    }

    let out_dir = out_dir.unwrap_or_else(|| {
        file.parent()
            .map(Path::to_path_buf)
            .unwrap_or_else(|| PathBuf::from("."))
    });
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("mmgraph: create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    let mut written = 0usize;
    for data in &captures {
        if data.dropped > 0 {
            eprintln!(
                "mmgraph: load {}: {} events were dropped at capture time (caps hit); \
                 graphs undercount",
                data.load, data.dropped
            );
        }
        for artifact in render_capture(data, bin_ms) {
            let path = out_dir.join(&artifact.name);
            if let Err(e) = std::fs::write(&path, artifact.content.as_bytes()) {
                eprintln!("mmgraph: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
            written += 1;
        }
    }
    println!(
        "mmgraph: {} loads, {} artifacts, bin {} ms",
        captures.len(),
        written,
        bin_ms
    );
    ExitCode::SUCCESS
}
