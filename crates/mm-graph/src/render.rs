//! Render analysis results as SVG graphs and CSV tables.
//!
//! The graphs mirror mahimahi's `mm-throughput-graph` / `mm-delay-graph`
//! conventions: capacity as a shaded region with achieved throughput as
//! a line on top; queueing delay as a per-packet scatter with p50/p95
//! band lines; plus a browser-style resource waterfall per page load.

use crate::analyze::{mbps, DelayBand, DelaySample, ThroughputSeries, WaterfallRow};
use crate::svg::{fnum, Plot, Svg};

const W: u32 = 720;
const H: u32 = 360;
const MARGIN_L: f64 = 56.0;
const MARGIN_R: f64 = 16.0;
const MARGIN_T: f64 = 36.0;
const MARGIN_B: f64 = 44.0;

const CAPACITY_FILL: &str = "#d9d9d9";
const THROUGHPUT_STROKE: &str = "#2266bb";
const P50_STROKE: &str = "#2266bb";
const P95_STROKE: &str = "#dd8822";
const SCATTER_FILL: &str = "#b0b0b0";
const QUEUED_FILL: &str = "#c8c8c8";
const OK_FILL: &str = "#4477cc";
const FAIL_FILL: &str = "#cc4444";

fn chart_plot(xmax: f64, ymax: f64) -> Plot {
    Plot {
        x: MARGIN_L,
        y: MARGIN_T,
        w: W as f64 - MARGIN_L - MARGIN_R,
        h: H as f64 - MARGIN_T - MARGIN_B,
        xmin: 0.0,
        xmax: xmax.max(f64::MIN_POSITIVE),
        ymin: 0.0,
        ymax: ymax.max(f64::MIN_POSITIVE),
    }
}

/// Throughput-vs-capacity timeseries for one link direction: shaded
/// capacity region, achieved-throughput line, utilization in the title.
pub fn throughput_svg(s: &ThroughputSeries, title: &str) -> String {
    let xmax = s.bins.last().map(|b| b.t_ms + s.bin_ms).unwrap_or(1) as f64;
    let ymax = s
        .bins
        .iter()
        .map(|b| mbps(b.capacity_bytes.max(b.delivered_bytes), s.bin_ms))
        .fold(1.0_f64, f64::max)
        * 1.05;
    let p = chart_plot(xmax, ymax);
    let mut svg = Svg::new(W, H);

    // Capacity as a filled step region down to the x-axis.
    let mut cap_pts = vec![(p.sx(0.0), p.sy(0.0))];
    for b in &s.bins {
        let y = p.sy(mbps(b.capacity_bytes, s.bin_ms));
        cap_pts.push((p.sx(b.t_ms as f64), y));
        cap_pts.push((p.sx((b.t_ms + s.bin_ms) as f64), y));
    }
    cap_pts.push((p.sx(xmax), p.sy(0.0)));
    svg.polygon(&cap_pts, CAPACITY_FILL);

    // Achieved throughput as a step line.
    let mut tput_pts = Vec::new();
    for b in &s.bins {
        let y = p.sy(mbps(b.delivered_bytes, s.bin_ms));
        tput_pts.push((p.sx(b.t_ms as f64), y));
        tput_pts.push((p.sx((b.t_ms + s.bin_ms) as f64), y));
    }
    svg.polyline(&tput_pts, THROUGHPUT_STROKE, 1.5);

    let cap_total: u64 = s.bins.iter().map(|b| b.capacity_bytes).sum();
    let util = if cap_total > 0 {
        s.delivered_total() as f64 / cap_total as f64 * 100.0
    } else {
        0.0
    };
    p.frame(&mut svg, "time (ms)", "Mbit/s");
    svg.text(MARGIN_L, 16.0, 12, "start", "#202020", title);
    svg.text(
        W as f64 - MARGIN_R,
        16.0,
        11,
        "end",
        "#202020",
        &format!(
            "delivered {} of {} offered bytes ({}% util)",
            s.delivered_total(),
            cap_total,
            fnum(util)
        ),
    );
    svg.finish()
}

/// Per-packet queueing-delay scatter with p50/p95 band lines.
pub fn delay_svg(samples: &[DelaySample], bands: &[DelayBand], title: &str) -> String {
    const NS_PER_MS: f64 = 1_000_000.0;
    let xmax = samples
        .iter()
        .map(|s| s.t_ns as f64 / NS_PER_MS)
        .fold(1.0_f64, f64::max);
    let ymax = samples
        .iter()
        .map(|s| s.sojourn_ns as f64 / NS_PER_MS)
        .fold(0.1_f64, f64::max)
        * 1.05;
    let p = chart_plot(xmax, ymax);
    let mut svg = Svg::new(W, H);

    for s in samples {
        svg.circle(
            p.sx(s.t_ns as f64 / NS_PER_MS),
            p.sy(s.sojourn_ns as f64 / NS_PER_MS),
            1.2,
            SCATTER_FILL,
        );
    }
    let band_line = |field: fn(&DelayBand) -> f64| -> Vec<(f64, f64)> {
        bands
            .iter()
            .map(|b| (p.sx(b.t_ms as f64), p.sy(field(b))))
            .collect()
    };
    svg.polyline(&band_line(|b| b.p50_ms), P50_STROKE, 1.5);
    svg.polyline(&band_line(|b| b.p95_ms), P95_STROKE, 1.5);

    p.frame(&mut svg, "time (ms)", "queueing delay (ms)");
    svg.text(MARGIN_L, 16.0, 12, "start", "#202020", title);
    svg.text(
        W as f64 - MARGIN_R,
        16.0,
        11,
        "end",
        "#202020",
        &format!("{} packets · p50 — · p95 —", samples.len()),
    );
    svg.finish()
}

/// HTTP resource waterfall: one bar per resource, light segment from
/// discovery to first byte on the wire, solid segment to completion.
pub fn waterfall_svg(rows: &[WaterfallRow], title: &str) -> String {
    const NS_PER_MS: f64 = 1_000_000.0;
    const ROW_H: f64 = 14.0;
    const LABEL_W: f64 = 240.0;
    let height = (MARGIN_T + MARGIN_B + rows.len() as f64 * ROW_H).ceil() as u32;
    let xmax = rows
        .iter()
        .filter_map(|r| r.finished_ns)
        .map(|t| t as f64 / NS_PER_MS)
        .fold(1.0_f64, f64::max);
    let p = Plot {
        x: LABEL_W,
        y: MARGIN_T,
        w: W as f64 - LABEL_W - MARGIN_R,
        h: rows.len() as f64 * ROW_H,
        xmin: 0.0,
        xmax,
        ymin: 0.0,
        ymax: 1.0,
    };
    let mut svg = Svg::new(W, height.max(H.min(120)));

    for (i, r) in rows.iter().enumerate() {
        let y = MARGIN_T + i as f64 * ROW_H;
        let queued = r.queued_ns as f64 / NS_PER_MS;
        let sent = r.sent_ns.map(|t| t as f64 / NS_PER_MS).unwrap_or(queued);
        let finished = r.finished_ns.map(|t| t as f64 / NS_PER_MS).unwrap_or(sent);
        let chars: Vec<char> = r.url.chars().collect();
        let label = if chars.len() > 36 {
            format!("…{}", chars[chars.len() - 35..].iter().collect::<String>())
        } else {
            r.url.clone()
        };
        svg.text(LABEL_W - 6.0, y + ROW_H - 4.0, 9, "end", "#404040", &label);
        svg.rect(
            p.sx(queued),
            y + 3.0,
            p.sx(sent) - p.sx(queued),
            ROW_H - 6.0,
            QUEUED_FILL,
        );
        let fill = if r.failed { FAIL_FILL } else { OK_FILL };
        svg.rect_titled(
            p.sx(sent),
            y + 2.0,
            (p.sx(finished) - p.sx(sent)).max(1.0),
            ROW_H - 4.0,
            fill,
            &format!(
                "{} · status {} · {} bytes · {} → {} ms",
                r.url,
                r.status,
                r.bytes,
                fnum(queued),
                fnum(finished)
            ),
        );
    }
    // Time axis along the bottom of the bars.
    let axis_y = MARGIN_T + rows.len() as f64 * ROW_H;
    svg.line(LABEL_W, axis_y, W as f64 - MARGIN_R, axis_y, "#404040", 1.0);
    for i in 0..=5u32 {
        let f = i as f64 / 5.0;
        let xv = f * xmax;
        let px = p.sx(xv);
        svg.line(px, axis_y, px, axis_y + 4.0, "#404040", 1.0);
        svg.text(px, axis_y + 16.0, 10, "middle", "#404040", &fnum(xv));
    }
    svg.text(
        LABEL_W + p.w / 2.0,
        axis_y + 32.0,
        11,
        "middle",
        "#202020",
        "time (ms)",
    );
    svg.text(MARGIN_L, 16.0, 12, "start", "#202020", title);
    svg.finish()
}

/// CSV for a throughput series: one row per bin.
pub fn throughput_csv(s: &ThroughputSeries) -> String {
    let mut out =
        String::from("t_ms,delivered_bytes,capacity_bytes,delivered_mbps,capacity_mbps\n");
    for b in &s.bins {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            b.t_ms,
            b.delivered_bytes,
            b.capacity_bytes,
            fnum(mbps(b.delivered_bytes, s.bin_ms)),
            fnum(mbps(b.capacity_bytes, s.bin_ms)),
        ));
    }
    out
}

/// CSV for delay bands: one row per bin.
pub fn delay_csv(bands: &[DelayBand]) -> String {
    let mut out = String::from("t_ms,n,p50_ms,p95_ms,max_ms\n");
    for b in bands {
        out.push_str(&format!(
            "{},{},{},{},{}\n",
            b.t_ms,
            b.n,
            fnum(b.p50_ms),
            fnum(b.p95_ms),
            fnum(b.max_ms),
        ));
    }
    out
}

/// CSV for a waterfall: one row per resource.
pub fn waterfall_csv(rows: &[WaterfallRow]) -> String {
    let mut out = String::from("resource,queued_ns,sent_ns,finished_ns,status,bytes,failed,url\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            r.resource,
            r.queued_ns,
            r.sent_ns.map(|t| t.to_string()).unwrap_or_default(),
            r.finished_ns.map(|t| t.to_string()).unwrap_or_default(),
            r.status,
            r.bytes,
            r.failed,
            r.url.replace(',', "%2C"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::ThroughputBin;

    #[test]
    fn throughput_svg_is_wellformed() {
        let s = ThroughputSeries {
            point: mm_capture::TapPoint {
                kind: mm_capture::PointKind::Link,
                index: 1,
                dir: mm_capture::Dir::Down,
            },
            bin_ms: 100,
            bins: vec![
                ThroughputBin {
                    t_ms: 0,
                    delivered_bytes: 150_000,
                    capacity_bytes: 150_000,
                },
                ThroughputBin {
                    t_ms: 100,
                    delivered_bytes: 75_000,
                    capacity_bytes: 150_000,
                },
            ],
        };
        let out = throughput_svg(&s, "test");
        assert!(out.starts_with("<svg"));
        assert!(out.contains("polygon"));
        assert!(out.contains("polyline"));
        assert!(out.contains("75% util"), "{out}");
    }

    #[test]
    fn csv_rows_match_bins() {
        let s = ThroughputSeries {
            point: mm_capture::TapPoint {
                kind: mm_capture::PointKind::Link,
                index: 1,
                dir: mm_capture::Dir::Up,
            },
            bin_ms: 50,
            bins: vec![ThroughputBin {
                t_ms: 0,
                delivered_bytes: 625_000,
                capacity_bytes: 1_250_000,
            }],
        };
        let csv = throughput_csv(&s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        // 625 kB in 50 ms = 100 Mbit/s.
        assert_eq!(lines[1], "0,625000,1250000,100,200");
    }

    #[test]
    fn waterfall_handles_unfinished_rows() {
        let rows = vec![WaterfallRow {
            resource: 0,
            url: "http://a/".into(),
            queued_ns: 0,
            sent_ns: None,
            finished_ns: None,
            status: 0,
            bytes: 0,
            failed: false,
        }];
        let svg = waterfall_svg(&rows, "t");
        assert!(svg.contains("http://a/"));
        let csv = waterfall_csv(&rows);
        assert!(csv.lines().nth(1).unwrap().contains(",,"));
    }
}
