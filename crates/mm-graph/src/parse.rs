//! Parse capture files back into [`CaptureData`].
//!
//! The JSONL parser is a hand-rolled scanner over the flat, fixed-shape
//! objects `mm_capture::data_to_jsonl` emits — not a general JSON
//! parser. Every line carries a `load` tag; lines are grouped into one
//! [`CaptureData`] per load (loads run in separate simulations with
//! separate clocks, so they must never be mixed). Binary captures are
//! recognized by magic and delegated to [`mm_capture::decode_binary`].

use std::collections::BTreeMap;

use mm_capture::{
    decode_binary, CaptureData, Dir, HttpEvent, HttpPhase, LinkMeta, PacketEvent, PacketEventKind,
    PointKind, TapPoint, BINARY_MAGIC,
};

/// Find the value start of `"key":` in a flat JSON object, skipping
/// occurrences embedded in string values (their quote is escaped, so
/// the preceding byte is a backslash).
fn find_key(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(rel) = line[start..].find(&pat) {
        let pos = start + rel;
        if pos == 0 || bytes[pos - 1] != b'\\' {
            return Some(pos + pat.len());
        }
        start = pos + 1;
    }
    None
}

fn get_u64(line: &str, key: &str) -> Result<u64, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let digits: &str = &line[at..];
    let end = digits
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(digits.len());
    if end == 0 {
        return Err(format!("field {key:?} is not a number"));
    }
    digits[..end]
        .parse()
        .map_err(|e| format!("field {key:?}: {e}"))
}

fn get_str(line: &str, key: &str) -> Result<String, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &line[at..];
    if !rest.starts_with('"') {
        return Err(format!("field {key:?} is not a string"));
    }
    let mut out = String::new();
    let mut chars = rest[1..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Ok(out),
            '\\' => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16)
                        .map_err(|e| format!("field {key:?}: bad \\u escape: {e}"))?;
                    out.push(
                        char::from_u32(code)
                            .ok_or_else(|| format!("field {key:?}: bad codepoint {code}"))?,
                    );
                }
                other => return Err(format!("field {key:?}: bad escape {other:?}")),
            },
            c => out.push(c),
        }
    }
    Err(format!("field {key:?}: unterminated string"))
}

fn get_u64_array(line: &str, key: &str) -> Result<Vec<u64>, String> {
    let at = find_key(line, key).ok_or_else(|| format!("missing field {key:?}"))?;
    let rest = &line[at..];
    if !rest.starts_with('[') {
        return Err(format!("field {key:?} is not an array"));
    }
    let close = rest
        .find(']')
        .ok_or_else(|| format!("field {key:?}: unterminated array"))?;
    let body = &rest[1..close];
    if body.trim().is_empty() {
        return Ok(Vec::new());
    }
    body.split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("field {key:?}: {e}")))
        .collect()
}

fn get_point(line: &str) -> Result<TapPoint, String> {
    let kind = match get_str(line, "at")?.as_str() {
        "link" => PointKind::Link,
        "delay" => PointKind::Delay,
        "loss" => PointKind::Loss,
        other => return Err(format!("unknown tap point kind {other:?}")),
    };
    let dir = match get_str(line, "dir")?.as_str() {
        "up" => Dir::Up,
        "down" => Dir::Down,
        other => return Err(format!("unknown direction {other:?}")),
    };
    Ok(TapPoint {
        kind,
        index: get_u64(line, "i")? as u32,
        dir,
    })
}

fn parse_line(line: &str, by_load: &mut BTreeMap<u64, CaptureData>) -> Result<(), String> {
    let ev = get_str(line, "ev")?;
    let load = get_u64(line, "load")?;
    let data = by_load.entry(load).or_insert_with(|| CaptureData {
        load,
        ..CaptureData::default()
    });
    match ev.as_str() {
        "link" => data.links.push(LinkMeta {
            point: get_point(line)?,
            deliveries_ms: get_u64_array(line, "deliveries_ms")?.into(),
            period_ms: get_u64(line, "period_ms")?,
            mtu_bytes: get_u64(line, "mtu")? as u32,
        }),
        "pkt" => data.packets.push(PacketEvent {
            t_ns: get_u64(line, "t_ns")?,
            kind: match get_str(line, "kind")?.as_str() {
                "enq" => PacketEventKind::Enqueue,
                "deq" => PacketEventKind::Dequeue,
                "drop" => PacketEventKind::Drop,
                "del" => PacketEventKind::Deliver,
                other => return Err(format!("unknown packet event kind {other:?}")),
            },
            point: get_point(line)?,
            pkt_id: get_u64(line, "pkt")?,
            size_bytes: get_u64(line, "size")? as u32,
            sojourn_ns: get_u64(line, "sojourn_ns")?,
            // Absent in pre-flow capture files; 0 means "no identity".
            flow: get_u64(line, "flow").unwrap_or(0),
        }),
        "http" => data.https.push(HttpEvent {
            t_ns: get_u64(line, "t_ns")?,
            phase: match get_str(line, "phase")?.as_str() {
                "queued" => HttpPhase::Queued,
                "sent" => HttpPhase::Sent,
                "done" => HttpPhase::Done,
                "failed" => HttpPhase::Failed,
                "srv_recv" => HttpPhase::ServerRecv,
                "srv_sent" => HttpPhase::ServerSent,
                other => return Err(format!("unknown http phase {other:?}")),
            },
            resource: get_u64(line, "res")? as u32,
            url: get_str(line, "url")?,
            status: get_u64(line, "status")? as u16,
            bytes: get_u64(line, "bytes")?,
        }),
        other => return Err(format!("unknown event type {other:?}")),
    }
    Ok(())
}

/// Parse a JSONL capture, grouping events into one [`CaptureData`] per
/// load, ordered by load id.
pub fn parse_jsonl(text: &str) -> Result<Vec<CaptureData>, String> {
    let mut by_load = BTreeMap::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        parse_line(line, &mut by_load).map_err(|e| format!("line {}: {e}", idx + 1))?;
    }
    Ok(by_load.into_values().collect())
}

/// Parse either capture serialization: binary (by magic) or JSONL.
pub fn parse_capture_bytes(bytes: &[u8]) -> Result<Vec<CaptureData>, String> {
    if bytes.starts_with(BINARY_MAGIC) {
        return Ok(vec![decode_binary(bytes)?]);
    }
    let text = std::str::from_utf8(bytes).map_err(|e| format!("capture is not UTF-8: {e}"))?;
    parse_jsonl(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_capture::{data_to_jsonl, encode_binary, Capture, PacketTap, NO_RESOURCE};

    fn sample_data(load: u64) -> CaptureData {
        let cap = Capture::for_load(load);
        cap.on_link_meta(&LinkMeta {
            point: TapPoint {
                kind: PointKind::Link,
                index: 2,
                dir: Dir::Down,
            },
            deliveries_ms: vec![0, 1, 1, 3].into(),
            period_ms: 4,
            mtu_bytes: 1500,
        });
        cap.on_packet(&PacketEvent {
            t_ns: 1_500_000,
            kind: PacketEventKind::Dequeue,
            point: TapPoint {
                kind: PointKind::Link,
                index: 2,
                dir: Dir::Down,
            },
            flow: 7,
            pkt_id: 42,
            size_bytes: 1460,
            sojourn_ns: 320_000,
        });
        cap.on_http(&HttpEvent {
            t_ns: 9,
            phase: HttpPhase::Done,
            resource: 0,
            url: "http://10.0.0.1/a\"b\\c".to_string(),
            status: 200,
            bytes: 1234,
        });
        cap.on_http(&HttpEvent {
            t_ns: 10,
            phase: HttpPhase::ServerSent,
            resource: NO_RESOURCE,
            url: "/a".to_string(),
            status: 200,
            bytes: 1234,
        });
        cap.data()
    }

    #[test]
    fn jsonl_roundtrip_exact() {
        let data = sample_data(7);
        let parsed = parse_jsonl(&data_to_jsonl(&data)).unwrap();
        assert_eq!(parsed, vec![data]);
    }

    #[test]
    fn multiple_loads_grouped_and_ordered() {
        let a = sample_data(5);
        let b = sample_data(2);
        let merged = format!("{}{}", data_to_jsonl(&a), data_to_jsonl(&b));
        let parsed = parse_jsonl(&merged).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].load, 2);
        assert_eq!(parsed[1].load, 5);
        assert_eq!(parsed[1], a);
    }

    #[test]
    fn binary_bytes_detected_by_magic() {
        let data = sample_data(3);
        let parsed = parse_capture_bytes(&encode_binary(&data)).unwrap();
        assert_eq!(parsed, vec![data]);
    }

    #[test]
    fn url_containing_key_pattern_does_not_confuse_scanner() {
        // A URL whose text contains `","t_ns":` style fragments: the
        // embedded quotes are escaped on write, so the scanner must skip
        // them when locating real keys.
        let data = {
            let cap = Capture::for_load(0);
            cap.on_http(&HttpEvent {
                t_ns: 4,
                phase: HttpPhase::Queued,
                resource: 1,
                url: "http://x/?q=\",\"t_ns\":999,\"".to_string(),
                status: 0,
                bytes: 0,
            });
            cap.data()
        };
        let parsed = parse_jsonl(&data_to_jsonl(&data)).unwrap();
        assert_eq!(parsed, vec![data]);
        assert_eq!(parsed[0].https[0].t_ns, 4);
    }

    #[test]
    fn bad_lines_are_reported_with_line_numbers() {
        let err = parse_jsonl("{\"ev\":\"pkt\",\"load\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = parse_jsonl("{\"ev\":\"nope\",\"load\":1}").unwrap_err();
        assert!(err.contains("unknown event type"), "{err}");
    }
}
