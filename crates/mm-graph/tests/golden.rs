//! Golden-file test: pins mm-graph's binning and SVG byte output for a
//! fixed synthetic capture, so rendering changes are always deliberate.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p mm-graph --test golden`
//! and review the diff.

use mm_capture::{
    CaptureData, Dir, HttpEvent, HttpPhase, LinkMeta, PacketEvent, PacketEventKind, PointKind,
    TapPoint,
};
use mm_graph::render_capture;

/// Deterministic capture: a 12 Mbit/s-style link with an LCG-jittered
/// packet schedule and a three-resource page load.
fn golden_capture() -> CaptureData {
    let point = TapPoint {
        kind: PointKind::Link,
        index: 1,
        dir: Dir::Down,
    };
    let mut state: u64 = 2014; // fixed seed
    let mut next = |modulus: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % modulus
    };
    let mut packets = Vec::new();
    let mut t_ns: u64 = 0;
    for i in 0..400u64 {
        t_ns += 500_000 + next(2_000_000); // 0.5–2.5 ms between packets
        let size = 100 + next(1400) as u32;
        let sojourn = next(8_000_000); // 0–8 ms queueing
        packets.push(PacketEvent {
            t_ns,
            kind: PacketEventKind::Enqueue,
            point,
            pkt_id: i,
            size_bytes: size,
            sojourn_ns: 0,
            flow: 0,
        });
        packets.push(PacketEvent {
            t_ns: t_ns + sojourn,
            kind: PacketEventKind::Dequeue,
            point,
            pkt_id: i,
            size_bytes: size,
            sojourn_ns: sojourn,
            flow: 0,
        });
        packets.push(PacketEvent {
            t_ns: t_ns + sojourn,
            kind: PacketEventKind::Deliver,
            point,
            pkt_id: i,
            size_bytes: size,
            sojourn_ns: 0,
            flow: 0,
        });
    }
    packets.sort_by_key(|p| p.t_ns);
    let http = |t_ns, phase, resource, url: &str, status, bytes| HttpEvent {
        t_ns,
        phase,
        resource,
        url: url.to_string(),
        status,
        bytes,
    };
    CaptureData {
        load: 1,
        links: vec![LinkMeta {
            point,
            deliveries_ms: (0..12).collect(),
            period_ms: 12,
            mtu_bytes: 1500,
        }],
        packets,
        https: vec![
            http(0, HttpPhase::Queued, 0, "http://10.0.0.1/", 0, 0),
            http(1_000_000, HttpPhase::Sent, 0, "http://10.0.0.1/", 0, 0),
            http(
                90_000_000,
                HttpPhase::Done,
                0,
                "http://10.0.0.1/",
                200,
                6200,
            ),
            http(
                95_000_000,
                HttpPhase::Queued,
                1,
                "http://10.0.0.1/app.js",
                0,
                0,
            ),
            http(
                96_000_000,
                HttpPhase::Sent,
                1,
                "http://10.0.0.1/app.js",
                0,
                0,
            ),
            http(
                240_000_000,
                HttpPhase::Done,
                1,
                "http://10.0.0.1/app.js",
                200,
                41_000,
            ),
            http(
                95_000_000,
                HttpPhase::Queued,
                2,
                "http://10.0.0.2/logo.png",
                0,
                0,
            ),
            http(
                97_000_000,
                HttpPhase::Sent,
                2,
                "http://10.0.0.2/logo.png",
                0,
                0,
            ),
            http(
                310_000_000,
                HttpPhase::Failed,
                2,
                "http://10.0.0.2/logo.png",
                0,
                0,
            ),
        ],
        dropped: 0,
    }
}

#[test]
fn rendered_artifacts_match_golden_files() {
    let artifacts = render_capture(&golden_capture(), 100);
    assert_eq!(
        artifacts.len(),
        6,
        "throughput/delay/waterfall, SVG+CSV each"
    );
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(&dir).unwrap();
        for a in &artifacts {
            std::fs::write(dir.join(&a.name), a.content.as_bytes()).unwrap();
        }
        return;
    }
    for a in &artifacts {
        let path = dir.join(&a.name);
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1",
                path.display()
            )
        });
        assert_eq!(
            a.content, want,
            "{} drifted from its golden file; if intended, regenerate with UPDATE_GOLDEN=1",
            a.name
        );
    }
}
