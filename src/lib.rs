pub use mahimahi;
