//! # mahimahi-rs — workspace facade
//!
//! Re-exports the [`mahimahi`] facade crate (`crates/core`), which is the
//! front door to the toolkit: the measurement [`harness`](mahimahi::harness),
//! plus one module per subsystem (`sim`, `net`, `http`, `shells`, `record`,
//! `replay`, `browser`, `corpus`, `trace`, `web`).
//!
//! The workspace-level integration tests in `tests/` and the runnable
//! walkthroughs in `examples/` build against this crate.

pub use mahimahi;

pub use mahimahi::{run_loads, run_page_load, LinkSpec, LoadSpec, NetSpec, QdiscKind};
